// Cross-cutting estimator properties, checked uniformly for every method:
//   * determinism: identical seed => identical estimate,
//   * probability range: p_hat ∈ [0, 1],
//   * call accounting: calls stay within the configured budget bound,
//   * seed sensitivity: different seeds actually change the randomness.
// These are the invariants Table 1's "number of calls" column and repeated
// -run averaging silently rely on.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/nofis.hpp"
#include "estimators/adaptive_is.hpp"
#include "estimators/line_sampling.hpp"
#include "estimators/monte_carlo.hpp"
#include "estimators/sir.hpp"
#include "estimators/sss.hpp"
#include "estimators/suc.hpp"
#include "estimators/sus.hpp"
#include "rng/normal.hpp"

namespace {

using namespace nofis;

/// Shared cheap problem: tilted half-space with P ≈ 1.3e-3 — rare enough
/// to exercise level machinery, common enough that every method finishes
/// within a tiny budget.
class TiltedHalfSpace final : public estimators::RareEventProblem {
public:
    std::size_t dim() const noexcept override { return 4; }
    double g(std::span<const double> x) const override {
        return 3.0 - (0.8 * x[0] + 0.6 * x[1]);
    }
    double analytic() const { return 1.0 - rng::normal_cdf(3.0); }
};

struct MethodSpec {
    std::string name;
    std::function<std::unique_ptr<estimators::Estimator>()> make;
    std::size_t max_calls;  ///< hard budget bound the config implies
};

std::vector<MethodSpec> specs() {
    std::vector<MethodSpec> out;
    out.push_back({"MC",
                   [] {
                       return std::make_unique<estimators::MonteCarloEstimator>(
                           estimators::MonteCarloEstimator::Config{2000, 512});
                   },
                   2000});
    out.push_back({"SUS",
                   [] {
                       return std::make_unique<
                           estimators::SubsetSimulationEstimator>(
                           estimators::SubsetSimulationEstimator::Config{
                               800, 0.1, 6, 1.0});
                   },
                   800 * 7});
    out.push_back({"SSS",
                   [] {
                       estimators::ScaledSigmaEstimator::Config cfg;
                       cfg.total_samples = 3000;
                       return std::make_unique<estimators::ScaledSigmaEstimator>(
                           cfg);
                   },
                   3000});
    out.push_back({"Adapt-IS",
                   [] {
                       estimators::AdaptiveIsEstimator::Config cfg;
                       cfg.iterations = 3;
                       cfg.samples_per_iteration = 600;
                       cfg.final_samples = 800;
                       return std::make_unique<estimators::AdaptiveIsEstimator>(
                           cfg);
                   },
                   3 * 600 + 800});
    out.push_back({"SIR",
                   [] {
                       estimators::SirEstimator::Config cfg;
                       cfg.train_samples = 1500;
                       cfg.surrogate_evals = 50000;
                       cfg.epochs = 20;
                       return std::make_unique<estimators::SirEstimator>(cfg);
                   },
                   1500});
    out.push_back({"SUC",
                   [] {
                       estimators::SubsetClassificationEstimator::Config cfg;
                       cfg.samples_per_level = 700;
                       cfg.max_levels = 6;
                       cfg.classifier_epochs = 15;
                       return std::make_unique<
                           estimators::SubsetClassificationEstimator>(cfg);
                   },
                   700 * 7});
    out.push_back({"LineSampling",
                   [] {
                       estimators::LineSamplingEstimator::Config cfg;
                       cfg.num_lines = 60;
                       cfg.pilot_samples = 150;
                       return std::make_unique<estimators::LineSamplingEstimator>(
                           cfg);
                   },
                   150 + 60 * 12 + 1});
    out.push_back({"NOFIS",
                   [] {
                       core::NofisConfig cfg;
                       cfg.layers_per_block = 2;
                       cfg.hidden = {8};
                       cfg.epochs = 10;
                       cfg.samples_per_epoch = 20;
                       cfg.n_is = 200;
                       cfg.tau = 10.0;
                       return std::make_unique<core::NofisEstimator>(
                           cfg, core::LevelSchedule::manual({1.6, 0.7, 0.0}));
                   },
                   3 * 10 * 20 + 200});
    return out;
}

class EveryEstimator : public ::testing::TestWithParam<std::size_t> {
protected:
    const MethodSpec& spec() const {
        static const auto all = specs();
        return all[GetParam()];
    }
};

TEST_P(EveryEstimator, DeterministicUnderFixedSeed) {
    TiltedHalfSpace problem;
    const auto est = spec().make();
    rng::Engine a(12345);
    rng::Engine b(12345);
    const auto ra = est->estimate(problem, a);
    const auto rb = est->estimate(problem, b);
    EXPECT_DOUBLE_EQ(ra.p_hat, rb.p_hat) << spec().name;
    EXPECT_EQ(ra.calls, rb.calls) << spec().name;
}

TEST_P(EveryEstimator, EstimateIsAValidProbability) {
    TiltedHalfSpace problem;
    const auto est = spec().make();
    rng::Engine eng(777);
    const auto res = est->estimate(problem, eng);
    EXPECT_TRUE(std::isfinite(res.p_hat)) << spec().name;
    EXPECT_GE(res.p_hat, 0.0) << spec().name;
    // IS-style estimators can overshoot 1 only through broken densities.
    EXPECT_LE(res.p_hat, 1.0) << spec().name;
}

TEST_P(EveryEstimator, CallAccountingWithinBudget) {
    TiltedHalfSpace problem;
    const auto est = spec().make();
    rng::Engine eng(4242);
    const auto res = est->estimate(problem, eng);
    EXPECT_GT(res.calls, 0u) << spec().name;
    EXPECT_LE(res.calls, spec().max_calls) << spec().name;
}

TEST_P(EveryEstimator, SeedChangesRandomness) {
    TiltedHalfSpace problem;
    const auto est = spec().make();
    rng::Engine a(1);
    rng::Engine b(2);
    const auto ra = est->estimate(problem, a);
    const auto rb = est->estimate(problem, b);
    // Different draws; allow the (legitimate) coincidence of two zero
    // estimates for the crudest methods at this budget.
    if (ra.p_hat != 0.0 || rb.p_hat != 0.0)
        EXPECT_NE(ra.p_hat, rb.p_hat) << spec().name;
}

INSTANTIATE_TEST_SUITE_P(Methods, EveryEstimator,
                         ::testing::Range<std::size_t>(0, 8));

}  // namespace
