#include <cmath>
#include <algorithm>
#include <map>
#include <memory>
#include <string>
// Cross-module integration tests: registry-driven estimator smoke runs over
// every Table-1 case, diagnostics serialisation, and the public-API flow the
// examples rely on.

#include <gtest/gtest.h>

#include "core/diagnostics.hpp"
#include "core/nofis.hpp"
#include "estimators/monte_carlo.hpp"
#include "estimators/sus.hpp"
#include "rng/normal.hpp"
#include "testcases/registry.hpp"

namespace {

using namespace nofis;

// Shared cache: DeepNet62 trains a base network on construction.
testcases::TestCase& cached_case(const std::string& name) {
    static std::map<std::string, std::unique_ptr<testcases::TestCase>> cache;
    auto it = cache.find(name);
    if (it == cache.end())
        it = cache.emplace(name, testcases::make_case(name)).first;
    return *it->second;
}

class EveryCase : public ::testing::TestWithParam<std::string> {};

TEST_P(EveryCase, CheapNofisRunProducesFiniteEstimate) {
    auto& tc = cached_case(GetParam());
    // Deliberately tiny budget: this is a smoke test of the full pipeline
    // (flow construction, staged training, counted g, IS estimate) on every
    // real model, not an accuracy test.
    core::NofisConfig cfg;
    cfg.layers_per_block = 4;
    cfg.hidden = {12};
    cfg.epochs = 6;
    cfg.samples_per_epoch = 16;
    cfg.n_is = 64;
    const auto budget = tc.nofis_budget();
    cfg.tau = budget.tau;
    // Clip the case's level schedule to at most 3 stages (keep a_M = 0).
    std::vector<double> levels;
    if (budget.levels.size() <= 3) {
        levels = budget.levels;
    } else {
        levels = {budget.levels.front(),
                  budget.levels[budget.levels.size() / 2],
                  0.0};
    }
    core::NofisEstimator est(cfg, core::LevelSchedule::manual(levels));
    rng::Engine eng(42);
    const auto res = est.estimate(tc, eng);
    EXPECT_TRUE(std::isfinite(res.p_hat));
    EXPECT_GE(res.p_hat, 0.0);
    EXPECT_EQ(res.calls,
              levels.size() * cfg.epochs * cfg.samples_per_epoch + cfg.n_is);
}

TEST_P(EveryCase, MonteCarloSmoke) {
    auto& tc = cached_case(GetParam());
    estimators::MonteCarloEstimator mc({.num_samples = 256, .batch = 128});
    rng::Engine eng(43);
    const auto res = mc.estimate(tc, eng);
    EXPECT_EQ(res.calls, 256u);
    EXPECT_GE(res.p_hat, 0.0);
    EXPECT_LE(res.p_hat, 1.0);
}

namespace {
std::vector<std::string> table1_and_extension_cases() {
    auto names = testcases::all_case_names();
    for (auto& n : testcases::extension_case_names()) names.push_back(n);
    return names;
}
}  // namespace

INSTANTIATE_TEST_SUITE_P(Registry, EveryCase,
                         ::testing::ValuesIn(table1_and_extension_cases()));

TEST(Diagnostics, LossCurveCsvFormat) {
    core::StageDiagnostics s1;
    s1.stage = 1;
    s1.level = 2.5;
    s1.epoch_loss = {10.0, 5.0};
    core::StageDiagnostics s2;
    s2.stage = 2;
    s2.level = 0.0;
    s2.epoch_loss = {4.0};
    const std::string csv = core::loss_curve_csv({s1, s2});
    EXPECT_NE(csv.find("stage,level,epoch,loss\n"), std::string::npos);
    EXPECT_NE(csv.find("1,2.5,0,10\n"), std::string::npos);
    EXPECT_NE(csv.find("1,2.5,1,5\n"), std::string::npos);
    EXPECT_NE(csv.find("2,0,0,4\n"), std::string::npos);
}

TEST(Integration, AutoLevelsFeedNofisDirectly) {
    // The paper's future-work extension end-to-end: pilot-quantile levels
    // plugged straight into the estimator.
    auto& tc = cached_case("Leaf");
    estimators::CountedProblem counted(tc);
    rng::Engine eng(44);
    core::AutoLevelConfig acfg;
    acfg.num_levels = 4;
    acfg.pilot_samples = 300;
    const auto levels = core::auto_levels(counted, eng, acfg);
    const std::size_t pilot_calls = counted.calls();

    core::NofisConfig cfg;
    cfg.epochs = 40;
    cfg.samples_per_epoch = 40;
    cfg.n_is = 1000;
    cfg.tau = 30.0;
    core::NofisEstimator est(cfg, levels);
    const auto res = est.estimate(tc, eng);
    EXPECT_FALSE(res.failed);
    EXPECT_LT(estimators::log_error(res.p_hat, tc.golden_pr()), 3.5);
    EXPECT_EQ(pilot_calls, 300u);
}

TEST(Integration, SusAndNofisAgreeOnLeafOrderOfMagnitude) {
    auto& tc = cached_case("Leaf");
    estimators::SubsetSimulationEstimator sus(
        {.samples_per_level = 3000, .p0 = 0.1, .max_levels = 10,
         .proposal_spread = 1.0});
    rng::Engine eng1(45);
    const auto sus_res = sus.estimate(tc, eng1);
    ASSERT_FALSE(sus_res.failed);

    const auto budget = tc.nofis_budget();
    core::NofisConfig cfg;
    cfg.epochs = 50;
    cfg.samples_per_epoch = 40;
    cfg.n_is = 1500;
    cfg.tau = budget.tau;
    core::NofisEstimator nofis(cfg,
                               core::LevelSchedule::manual(budget.levels));
    rng::Engine eng2(46);
    const auto nofis_res = nofis.estimate(tc, eng2);
    ASSERT_FALSE(nofis_res.failed);

    EXPECT_LT(std::abs(std::log(std::max(sus_res.p_hat, 1e-12)) -
                       std::log(std::max(nofis_res.p_hat, 1e-12))),
              2.5);
}

}  // namespace
