// Tests for the scale-out serving topology (src/serve/cluster, DESIGN.md
// §15): a front that routes requests by stable model hash to `nofis_cli
// serve` worker processes.
//
// The load-bearing case is TwoWorkersServeSingleWorkerBytes: the cluster
// must serve exactly the bytes a single worker would — routing a model's
// traffic to one worker preserves the per-worker bitwise determinism
// contract. Model names matter here: FNV-1a("toy3") is even and
// FNV-1a("toy2") is odd, so at two workers the fixture's models land on
// different workers (pinned by ClusterRouting.StableBalancedAndPinned).
//
// These tests spawn the real nofis_cli binary (found next to the test
// tree); they skip when it has not been built.

#include <gtest/gtest.h>
#include <signal.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "flow/serialize.hpp"
#include "rng/engine.hpp"
#include "serve/cluster/cluster.hpp"
#include "serve/protocol.hpp"
#include "serve/tcp_client.hpp"

namespace {

using namespace nofis;
using serve::ErrorCode;
using serve::Op;
using serve::Request;
using serve::Response;
using serve::cluster::Cluster;
using serve::cluster::ClusterConfig;
using serve::cluster::route_worker;

std::string cli_path() {
    std::error_code ec;
    const auto self = std::filesystem::read_symlink("/proc/self/exe", ec);
    if (ec) return "";
    const auto cli = self.parent_path().parent_path() / "apps" / "nofis_cli";
    return std::filesystem::exists(cli) ? cli.string() : "";
}

flow::CouplingStack make_stack(std::size_t dim, std::uint64_t seed) {
    flow::StackConfig cfg;
    cfg.dim = dim;
    cfg.num_blocks = 2;
    cfg.layers_per_block = 2;
    cfg.hidden = {8};
    rng::Engine eng(seed);
    return flow::CouplingStack(cfg, eng);
}

/// Fresh inits are identity maps (zeroed coupling output layers), so a
/// reload test needs weights that visibly change the served bytes.
flow::CouplingStack make_perturbed_stack(std::size_t dim,
                                         std::uint64_t seed) {
    auto stack = make_stack(dim, seed);
    auto snap = flow::snapshot_params(stack);
    for (std::size_t i = 0; i < snap.size(); ++i)
        for (std::size_t r = 0; r < snap[i].rows(); ++r)
            for (std::size_t c = 0; c < snap[i].cols(); ++c)
                snap[i](r, c) += 0.01 * static_cast<double>(
                                            (i + r + c + seed % 13) % 7 + 1);
    flow::restore_params(stack, snap);
    return stack;
}

Request sample_req(std::uint64_t id, const std::string& model,
                   std::uint64_t seed, std::size_t n) {
    Request req;
    req.id = id;
    req.op = Op::kSample;
    req.model = model;
    req.seed = seed;
    req.n = n;
    return req;
}

class ClusterFixture : public ::testing::Test {
protected:
    void SetUp() override {
        cli_ = cli_path();
        if (cli_.empty())
            GTEST_SKIP() << "nofis_cli not built next to the test tree";
        dir_ = ::testing::TempDir() + "nofis_cluster_" +
               std::to_string(::getpid()) + "_" +
               ::testing::UnitTest::GetInstance()->current_test_info()->name();
        std::filesystem::create_directories(dir_);
        flow::save_stack(make_stack(3, 101), dir_ + "/toy3.nofisflow");
        flow::save_stack(make_stack(2, 202), dir_ + "/toy2.nofisflow");
    }
    void TearDown() override {
        std::error_code ec;
        std::filesystem::remove_all(dir_, ec);
    }

    ClusterConfig config(std::size_t workers) const {
        ClusterConfig cfg;
        cfg.workers = workers;
        cfg.worker.command = {cli_};
        cfg.worker.model_dir = dir_;
        cfg.worker.threads = 1;  // single-core CI friendliness
        return cfg;
    }

    std::string cli_;
    std::string dir_;
};

// ---------------------------------------------------------------------------
// Routing
// ---------------------------------------------------------------------------

TEST(ClusterRouting, StableBalancedAndPinned) {
    for (const char* name : {"toy3", "toy2", "a", "", "some/model"}) {
        EXPECT_EQ(route_worker(name, 1), 0u);
        for (const std::size_t w : {2u, 3u, 4u, 7u}) {
            const std::size_t first = route_worker(name, w);
            EXPECT_LT(first, w);
            EXPECT_EQ(route_worker(name, w), first) << "unstable hash";
        }
    }
    // Pin the fixture models to distinct workers at N=2. Changing the hash
    // function silently re-shards every deployment's disk caches — if this
    // fails, that is a breaking change to call out, not a test to update.
    EXPECT_EQ(route_worker("toy3", 2), 0u);
    EXPECT_EQ(route_worker("toy2", 2), 1u);
}

// ---------------------------------------------------------------------------
// Byte identity across worker counts (the acceptance criterion)
// ---------------------------------------------------------------------------

TEST_F(ClusterFixture, TwoWorkersServeSingleWorkerBytes) {
    std::vector<std::string> lines;
    std::uint64_t id = 1;
    for (std::uint64_t seed : {11u, 22u, 33u})
        lines.push_back(sample_req(id++, "toy3", seed, 2).encode());
    for (std::uint64_t seed : {44u, 55u})
        lines.push_back(sample_req(id++, "toy2", seed, 3).encode());

    std::vector<std::vector<std::string>> served;
    for (const std::size_t workers : {1u, 2u}) {
        Cluster cluster(config(workers));
        serve::TcpClient client("127.0.0.1", cluster.port());
        std::vector<std::string> responses;
        for (const auto& line : lines) {
            responses.push_back(client.call_raw(line));
            EXPECT_TRUE(Response::decode(responses.back()).ok);
        }
        served.push_back(std::move(responses));
        cluster.shutdown();
    }
    EXPECT_EQ(served[0], served[1]);
}

// ---------------------------------------------------------------------------
// Front admin plane
// ---------------------------------------------------------------------------

TEST_F(ClusterFixture, FrontAnswersPingAndForwardsListModels) {
    Cluster cluster(config(2));
    serve::TcpClient client("127.0.0.1", cluster.port());

    Request ping;
    ping.op = Op::kPing;
    ping.id = 3;
    const Response pong = client.call(ping);
    ASSERT_TRUE(pong.ok);
    EXPECT_EQ(pong.id, 3u);
    const serve::Json* workers = pong.result.find("workers");
    ASSERT_NE(workers, nullptr);
    EXPECT_EQ(workers->as_u64(), 2u);

    Request list;
    list.op = Op::kListModels;
    list.id = 4;
    const std::string raw = client.call_raw(list.encode());
    EXPECT_TRUE(Response::decode(raw).ok);
    EXPECT_NE(raw.find("toy3"), std::string::npos);
    EXPECT_NE(raw.find("toy2"), std::string::npos);
    cluster.shutdown();
}

TEST_F(ClusterFixture, DrainResumeRoundTrip) {
    Cluster cluster(config(2));
    serve::TcpClient client("127.0.0.1", cluster.port());

    Request drain;
    drain.op = Op::kDrain;
    drain.worker = 0;
    drain.id = 1;
    const Response drained = client.call(drain);
    ASSERT_TRUE(drained.ok) << drained.error_message;

    // toy2 lives on worker 1 and keeps serving while worker 0 is drained.
    const Response other =
        Response::decode(client.call_raw(sample_req(2, "toy2", 5, 1).encode()));
    EXPECT_TRUE(other.ok);

    Request resume;
    resume.op = Op::kResume;
    resume.worker = 0;
    resume.id = 3;
    ASSERT_TRUE(client.call(resume).ok);

    const Response back =
        Response::decode(client.call_raw(sample_req(4, "toy3", 5, 1).encode()));
    EXPECT_TRUE(back.ok) << back.error_message;
    cluster.shutdown();
}

TEST_F(ClusterFixture, ReloadSwapsWeightsWithZeroFailedRequests) {
    Cluster cluster(config(2));
    serve::TcpClient client("127.0.0.1", cluster.port());

    const std::string line = sample_req(1, "toy3", 7, 2).encode();
    const std::string before = client.call_raw(line);
    ASSERT_TRUE(Response::decode(before).ok);

    flow::save_stack(make_perturbed_stack(3, 999), dir_ + "/toy3.nofisflow");
    Request reload;
    reload.op = Op::kReload;
    reload.model = "toy3";
    reload.id = 2;
    const Response ack = client.call(reload);
    ASSERT_TRUE(ack.ok) << ack.error_message;

    const std::string after = client.call_raw(line);
    ASSERT_TRUE(Response::decode(after).ok);
    EXPECT_NE(before, after) << "reload did not swap to the new weights";
    cluster.shutdown();
}

// ---------------------------------------------------------------------------
// Worker failure: structured errors, then recovery
// ---------------------------------------------------------------------------

TEST_F(ClusterFixture, KilledWorkerYieldsStructuredErrorThenRespawns) {
    Cluster cluster(config(2));
    serve::TcpClient client("127.0.0.1", cluster.port());

    // toy3's worker (0) dies hard mid-conversation.
    const pid_t victim = cluster.worker_pid(0);
    ASSERT_GT(victim, 0);
    ASSERT_EQ(::kill(victim, SIGKILL), 0);

    // Every attempt must return promptly — either the structured
    // worker_unavailable while the slot respawns, or success once it has.
    bool recovered = false;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    std::uint64_t id = 1;
    while (std::chrono::steady_clock::now() < deadline) {
        const Response res = Response::decode(
            client.call_raw(sample_req(id++, "toy3", 5, 1).encode()));
        if (res.ok) {
            recovered = true;
            break;
        }
        EXPECT_EQ(res.error_code, ErrorCode::kWorkerUnavailable)
            << res.error_message;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    EXPECT_TRUE(recovered) << "worker 0 never came back";
    EXPECT_GE(cluster.worker_restarts(0), 1u);
    EXPECT_NE(cluster.worker_pid(0), victim);

    // The untouched worker served throughout.
    const Response other =
        Response::decode(client.call_raw(sample_req(id, "toy2", 5, 1).encode()));
    EXPECT_TRUE(other.ok);
    cluster.shutdown();
}

// ---------------------------------------------------------------------------
// Shutdown + metrics aggregation
// ---------------------------------------------------------------------------

TEST_F(ClusterFixture, ShutdownOpStopsTheFront) {
    Cluster cluster(config(1));
    serve::TcpClient client("127.0.0.1", cluster.port());
    Request down;
    down.op = Op::kShutdown;
    down.id = 1;
    const Response ack = client.call(down);
    EXPECT_TRUE(ack.ok);
    cluster.wait();  // returns because the shutdown op signalled it
    cluster.shutdown();
}

TEST_F(ClusterFixture, AggregatedMetricsCoverEveryWorker) {
    ClusterConfig cfg = config(2);
    cfg.metrics_out = dir_ + "/fleet.json";
    Cluster cluster(cfg);
    {
        serve::TcpClient client("127.0.0.1", cluster.port());
        for (std::uint64_t id = 1; id <= 4; ++id) {
            const std::string model = id % 2 == 0 ? "toy2" : "toy3";
            EXPECT_TRUE(Response::decode(
                            client.call_raw(
                                sample_req(id, model, id, 1).encode()))
                            .ok);
        }
    }
    cluster.shutdown();  // workers write their records on exit
    ASSERT_TRUE(cluster.write_metrics(cfg.metrics_out));

    std::ifstream in(cfg.metrics_out);
    std::stringstream buf;
    buf << in.rdbuf();
    const serve::Json doc = serve::Json::parse(buf.str());
    EXPECT_EQ(doc.find("schema")->as_string(), "nofis-cluster-metrics-v1");
    EXPECT_EQ(doc.find("workers")->as_u64(), 2u);
    const serve::Json* per_worker = doc.find("per_worker");
    ASSERT_NE(per_worker, nullptr);
    ASSERT_EQ(per_worker->size(), 2u);
    // Both workers took traffic, and the fleet totals add their counters.
    const serve::Json* fleet = doc.find("fleet");
    ASSERT_NE(fleet, nullptr);
    const serve::Json* counters = fleet->find("counters");
    ASSERT_NE(counters, nullptr);
    std::uint64_t fleet_requests = 0;
    for (const auto& [name, value] : counters->members())
        if (name == "serve.requests") fleet_requests = value.as_u64();
    EXPECT_EQ(fleet_requests, 4u);
}

}  // namespace
