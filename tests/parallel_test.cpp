// Tests for the parallel execution layer (src/parallel) and its central
// promise: results are bitwise identical under any thread count. Covers the
// ThreadPool fork-join primitive, parallel_for chunking, the parallel
// matmul kernel, batched guarded evaluation, and a full NOFIS run replayed
// at several pool sizes (with and without fault injection).

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "core/nofis.hpp"
#include "estimators/guarded_problem.hpp"
#include "linalg/matrix.hpp"
#include "parallel/thread_pool.hpp"
#include "rng/normal.hpp"
#include "testcases/fault_injector.hpp"
#include "testcases/synthetic.hpp"

namespace {

using namespace nofis;

/// Restores the global pool size on scope exit so tests don't leak their
/// thread-count choice into each other.
struct PoolGuard {
    ~PoolGuard() { parallel::set_num_threads(0); }
};

TEST(ThreadPool, RunsEveryLaneExactlyOnce) {
    parallel::ThreadPool pool(4);
    EXPECT_EQ(pool.lanes(), 4u);
    std::vector<int> hits(4, 0);
    pool.run([&](std::size_t lane) { ++hits[lane]; });
    for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, SingleLanePoolRunsInline) {
    parallel::ThreadPool pool(1);
    EXPECT_EQ(pool.lanes(), 1u);
    int count = 0;
    pool.run([&](std::size_t lane) {
        EXPECT_EQ(lane, 0u);
        ++count;
    });
    EXPECT_EQ(count, 1);
}

TEST(ThreadPool, RethrowsLowestLaneException) {
    parallel::ThreadPool pool(4);
    std::atomic<int> completed{0};
    try {
        pool.run([&](std::size_t lane) {
            if (lane == 3) throw std::runtime_error("lane three");
            if (lane == 1) throw std::runtime_error("lane one");
            ++completed;
        });
        FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(), "lane one");
    }
    // Non-throwing lanes still ran to completion.
    EXPECT_EQ(completed.load(), 2);
}

TEST(ThreadPool, ReusableAcrossJobs) {
    parallel::ThreadPool pool(3);
    for (int round = 0; round < 50; ++round) {
        std::atomic<int> sum{0};
        pool.run([&](std::size_t lane) {
            sum += static_cast<int>(lane) + 1;
        });
        EXPECT_EQ(sum.load(), 6);
    }
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
    PoolGuard guard;
    for (std::size_t threads : {1u, 2u, 4u, 7u}) {
        parallel::set_num_threads(threads);
        const std::size_t n = 103;  // deliberately not a lane multiple
        std::vector<int> hits(n, 0);
        parallel::parallel_for(n, [&](std::size_t b, std::size_t e) {
            for (std::size_t i = b; i < e; ++i) ++hits[i];
        });
        EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0),
                  static_cast<int>(n))
            << "threads=" << threads;
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_EQ(hits[i], 1) << "index " << i << " threads " << threads;
    }
}

TEST(ParallelFor, ZeroAndTinyRangesWork) {
    PoolGuard guard;
    parallel::set_num_threads(8);
    int calls = 0;
    parallel::parallel_for(0, [&](std::size_t, std::size_t) { ++calls; });
    EXPECT_EQ(calls, 0);

    // n < lanes: every index still visited exactly once.
    std::vector<int> hits(3, 0);
    parallel::parallel_for(3, [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) ++hits[i];
    });
    for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelFor, NestedCallDegradesToInlineWithoutDeadlock) {
    PoolGuard guard;
    parallel::set_num_threads(4);
    std::vector<std::atomic<int>> hits(64);
    parallel::parallel_for(8, [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i)
            parallel::parallel_for(8, [&](std::size_t b2, std::size_t e2) {
                for (std::size_t j = b2; j < e2; ++j) ++hits[i * 8 + j];
            });
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, SetNumThreadsRoundTrips) {
    PoolGuard guard;
    parallel::set_num_threads(3);
    EXPECT_EQ(parallel::num_threads(), 3u);
    parallel::set_num_threads(0);
    EXPECT_GE(parallel::num_threads(), 1u);
}

TEST(RethrowFirst, PicksLowestIndexAndIgnoresEmpty) {
    std::vector<std::exception_ptr> none(5);
    EXPECT_NO_THROW(parallel::rethrow_first(none));

    std::vector<std::exception_ptr> errors(5);
    errors[4] = std::make_exception_ptr(std::runtime_error("late"));
    errors[2] = std::make_exception_ptr(std::runtime_error("early"));
    try {
        parallel::rethrow_first(errors);
        FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(), "early");
    }
}

TEST(ParallelMatmul, BitwiseIdenticalAcrossThreadCounts) {
    PoolGuard guard;
    rng::Engine eng(17);
    // 96x96x96 = ~885k multiply-adds: well above the parallel threshold.
    const auto a = rng::standard_normal_matrix(eng, 96, 96);
    const auto b = rng::standard_normal_matrix(eng, 96, 96);

    parallel::set_num_threads(1);
    const auto serial = a.matmul(b);
    for (std::size_t threads : {2u, 3u, 8u}) {
        parallel::set_num_threads(threads);
        const auto parallel_out = a.matmul(b);
        ASSERT_EQ(parallel_out.rows(), serial.rows());
        ASSERT_EQ(parallel_out.cols(), serial.cols());
        for (std::size_t i = 0; i < serial.size(); ++i)
            ASSERT_EQ(parallel_out.flat()[i], serial.flat()[i])
                << "element " << i << " differs at threads=" << threads;
    }
}

TEST(ParallelGRows, BatchMatchesSerialCallsOnCleanProblem) {
    PoolGuard guard;
    const testcases::LeafCase leaf;
    rng::Engine eng(5);
    const auto x = rng::standard_normal_matrix(eng, 77, leaf.dim());

    std::vector<double> serial(x.rows());
    for (std::size_t r = 0; r < x.rows(); ++r)
        serial[r] = leaf.g(x.row_span(r));

    for (std::size_t threads : {1u, 4u}) {
        parallel::set_num_threads(threads);
        const auto batch = leaf.g_rows(x);
        ASSERT_EQ(batch.size(), serial.size());
        for (std::size_t r = 0; r < serial.size(); ++r)
            ASSERT_EQ(batch[r], serial[r]) << "row " << r;
    }
}

void expect_reports_equal(const estimators::FaultReport& a,
                          const estimators::FaultReport& b,
                          const char* context) {
    for (std::size_t i = 0; i < a.counts.size(); ++i)
        EXPECT_EQ(a.counts[i], b.counts[i]) << context << " counts[" << i
                                            << "]";
    EXPECT_EQ(a.retry_attempts, b.retry_attempts) << context;
    EXPECT_EQ(a.recovered, b.recovered) << context;
    EXPECT_EQ(a.clamped, b.clamped) << context;
    EXPECT_EQ(a.propagated, b.propagated) << context;
    EXPECT_EQ(a.has_first, b.has_first) << context;
    EXPECT_EQ(a.first_kind, b.first_kind) << context;
    EXPECT_EQ(a.first_call_index, b.first_call_index) << context;
    EXPECT_EQ(a.first_message, b.first_message) << context;
    EXPECT_EQ(a.first_x, b.first_x) << context;
}

TEST(ParallelGRows, GuardedBatchReplaysFaultsIdenticallyAcrossThreadCounts) {
    PoolGuard guard;
    const testcases::LeafCase leaf;
    testcases::FaultInjectorConfig icfg;
    icfg.nan_rate = 0.15;
    icfg.throw_rate = 0.05;
    icfg.seed = 1234;

    rng::Engine eng(11);
    const auto x = rng::standard_normal_matrix(eng, 64, leaf.dim());

    std::vector<double> baseline;
    estimators::FaultReport baseline_report;
    for (std::size_t threads : {1u, 2u, 8u}) {
        parallel::set_num_threads(threads);
        const testcases::FaultInjector injector(leaf, icfg);
        estimators::GuardConfig gcfg;
        gcfg.policy = estimators::GuardConfig::Policy::kRetryPerturb;
        const estimators::GuardedProblem guarded(injector, gcfg);
        const auto values = guarded.g_rows(x);
        if (threads == 1u) {
            baseline = values;
            baseline_report = guarded.report();
            EXPECT_GT(baseline_report.total_faults(), 0u)
                << "test needs a fault load to be meaningful";
            continue;
        }
        ASSERT_EQ(values.size(), baseline.size());
        for (std::size_t r = 0; r < baseline.size(); ++r)
            ASSERT_EQ(values[r], baseline[r])
                << "row " << r << " differs at threads=" << threads;
        expect_reports_equal(guarded.report(), baseline_report, "g_rows");
    }
}

struct RunFingerprint {
    double p_hat = 0.0;
    std::size_t calls = 0;
    estimators::FaultReport report;
    std::vector<double> stage_losses;
};

RunFingerprint run_nofis(std::size_t threads, bool inject) {
    const testcases::LeafCase leaf;
    testcases::FaultInjectorConfig icfg;
    icfg.nan_rate = 0.01;
    icfg.throw_rate = 0.005;
    icfg.seed = 99;
    const testcases::FaultInjector injector(leaf, icfg);
    const estimators::RareEventProblem& problem =
        inject ? static_cast<const estimators::RareEventProblem&>(injector)
               : leaf;

    core::NofisConfig cfg;
    cfg.epochs = 8;
    cfg.samples_per_epoch = 40;
    cfg.n_is = 300;
    cfg.tau = 20.0;
    cfg.hidden = {16, 16};
    cfg.layers_per_block = 4;
    cfg.threads = threads;
    core::NofisEstimator est(cfg, core::LevelSchedule::manual({8.0, 3.0, 0.0}));

    rng::Engine eng(7);
    const auto run = est.run(problem, eng);

    RunFingerprint fp;
    fp.p_hat = run.estimate.p_hat;
    fp.calls = run.estimate.calls;
    fp.report = run.health.faults;
    for (const auto& s : run.stages)
        for (double v : s.epoch_loss) fp.stage_losses.push_back(v);
    return fp;
}

// The seed-determinism property the whole layer is built around: a NOFIS
// run is a pure function of (seed, config) — the thread count changes only
// wall-clock time, never a single bit of the estimate, the call budget, the
// loss curves, or the fault ledger.
TEST(Determinism, NofisRunBitwiseIdenticalAcrossThreadCounts) {
    PoolGuard guard;
    const RunFingerprint base = run_nofis(1, /*inject=*/false);
    EXPECT_TRUE(std::isfinite(base.p_hat));
    for (std::size_t threads : {2u, 8u}) {
        const RunFingerprint fp = run_nofis(threads, /*inject=*/false);
        EXPECT_EQ(fp.p_hat, base.p_hat) << "threads=" << threads;
        EXPECT_EQ(fp.calls, base.calls) << "threads=" << threads;
        ASSERT_EQ(fp.stage_losses.size(), base.stage_losses.size());
        for (std::size_t i = 0; i < base.stage_losses.size(); ++i)
            ASSERT_EQ(fp.stage_losses[i], base.stage_losses[i])
                << "loss " << i << " threads=" << threads;
        expect_reports_equal(fp.report, base.report, "clean run");
    }
}

TEST(Determinism, FaultInjectedNofisRunReplaysIdenticallyAcrossThreadCounts) {
    PoolGuard guard;
    const RunFingerprint base = run_nofis(1, /*inject=*/true);
    EXPECT_GT(base.report.total_faults(), 0u)
        << "test needs a fault load to be meaningful";
    for (std::size_t threads : {2u, 8u}) {
        const RunFingerprint fp = run_nofis(threads, /*inject=*/true);
        EXPECT_EQ(fp.p_hat, base.p_hat) << "threads=" << threads;
        EXPECT_EQ(fp.calls, base.calls) << "threads=" << threads;
        ASSERT_EQ(fp.stage_losses.size(), base.stage_losses.size());
        for (std::size_t i = 0; i < base.stage_losses.size(); ++i) {
            // NaN sentinels (skipped epochs) compare unequal to themselves;
            // treat NaN==NaN as a match, anything else must be bitwise
            // equal.
            const double x = fp.stage_losses[i];
            const double y = base.stage_losses[i];
            if (std::isnan(x) && std::isnan(y)) continue;
            ASSERT_EQ(x, y) << "loss " << i << " threads=" << threads;
        }
        expect_reports_equal(fp.report, base.report, "fault-injected run");
    }
}

}  // namespace
