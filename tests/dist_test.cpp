#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "dist/diag_gaussian.hpp"
#include "dist/full_gaussian.hpp"
#include "dist/gaussian_mixture.hpp"
#include "dist/standard_normal.hpp"
#include "rng/normal.hpp"

namespace {

using nofis::dist::DiagGaussian;
using nofis::dist::FullGaussian;
using nofis::dist::GaussianMixture;
using nofis::dist::StandardNormal;
using nofis::linalg::Matrix;
using nofis::rng::Engine;

TEST(StandardNormalDist, LogPdfMatchesRngHelper) {
    StandardNormal d(3);
    const double x[] = {0.5, -1.0, 2.0};
    EXPECT_NEAR(d.log_pdf(x), nofis::rng::standard_normal_log_pdf(x), 1e-14);
    EXPECT_THROW(d.log_pdf(std::vector<double>(2)), std::invalid_argument);
    EXPECT_THROW(StandardNormal(0), std::invalid_argument);
}

TEST(StandardNormalDist, SampleStatistics) {
    StandardNormal d(4);
    Engine eng(1);
    const Matrix x = d.sample(eng, 20000);
    const Matrix mean = x.col_means();
    for (std::size_t c = 0; c < 4; ++c) EXPECT_NEAR(mean(0, c), 0.0, 0.05);
}

TEST(DiagGaussianDist, LogPdfClosedForm) {
    DiagGaussian d({1.0, -2.0}, {0.5, 2.0});
    // Independent sum of two 1-D normals.
    const double x[] = {1.5, 0.0};
    const double expect =
        nofis::rng::normal_log_pdf((1.5 - 1.0) / 0.5) - std::log(0.5) +
        nofis::rng::normal_log_pdf((0.0 + 2.0) / 2.0) - std::log(2.0);
    EXPECT_NEAR(d.log_pdf(x), expect, 1e-12);
}

TEST(DiagGaussianDist, SampleMomentsMatchParameters) {
    DiagGaussian d({3.0, -1.0, 0.0}, {0.1, 2.0, 1.0});
    Engine eng(2);
    const Matrix x = d.sample(eng, 50000);
    const Matrix mean = x.col_means();
    EXPECT_NEAR(mean(0, 0), 3.0, 0.01);
    EXPECT_NEAR(mean(0, 1), -1.0, 0.05);
    double var1 = 0.0;
    for (std::size_t r = 0; r < x.rows(); ++r) {
        const double c = x(r, 1) - mean(0, 1);
        var1 += c * c;
    }
    var1 /= static_cast<double>(x.rows());
    EXPECT_NEAR(var1, 4.0, 0.15);
}

TEST(DiagGaussianDist, RejectsBadParameters) {
    EXPECT_THROW(DiagGaussian({0.0}, {0.0}), std::invalid_argument);
    EXPECT_THROW(DiagGaussian({0.0}, {1.0, 2.0}), std::invalid_argument);
    EXPECT_THROW(DiagGaussian({}, {}), std::invalid_argument);
}

TEST(DiagGaussianDist, IsotropicMatchesScaledStandard) {
    const auto d = DiagGaussian::isotropic(3, 2.0);
    StandardNormal s(3);
    const double x[] = {1.0, 2.0, -1.0};
    const double xs[] = {0.5, 1.0, -0.5};
    EXPECT_NEAR(d.log_pdf(x), s.log_pdf(xs) - 3.0 * std::log(2.0), 1e-12);
}

TEST(FullGaussianDist, MatchesDiagWhenCovarianceDiagonal) {
    const Matrix cov{{0.25, 0.0}, {0.0, 4.0}};
    FullGaussian f({1.0, -2.0}, cov);
    DiagGaussian d({1.0, -2.0}, {0.5, 2.0});
    const double x[] = {0.3, 1.1};
    EXPECT_NEAR(f.log_pdf(x), d.log_pdf(x), 1e-10);
}

TEST(FullGaussianDist, CorrelatedSampleCovariance) {
    const Matrix cov{{1.0, 0.8}, {0.8, 1.0}};
    FullGaussian f({0.0, 0.0}, cov);
    Engine eng(3);
    const Matrix x = f.sample(eng, 50000);
    double cxy = 0.0;
    for (std::size_t r = 0; r < x.rows(); ++r) cxy += x(r, 0) * x(r, 1);
    cxy /= static_cast<double>(x.rows());
    EXPECT_NEAR(cxy, 0.8, 0.03);
}

TEST(FullGaussianDist, DensityIntegrationSanity) {
    // Integrates to ~1 over a grid (2-D, coarse Riemann check).
    const Matrix cov{{0.5, 0.2}, {0.2, 0.7}};
    FullGaussian f({0.0, 0.0}, cov);
    double total = 0.0;
    const double h = 0.05;
    for (double a = -5.0; a < 5.0; a += h)
        for (double b = -5.0; b < 5.0; b += h) {
            const double x[] = {a, b};
            total += std::exp(f.log_pdf(x)) * h * h;
        }
    EXPECT_NEAR(total, 1.0, 1e-3);
}

TEST(Mixture, SingleComponentEqualsGaussian) {
    GaussianMixture m({{1.0, {0.5, -0.5}, {1.5, 0.7}}});
    DiagGaussian d({0.5, -0.5}, {1.5, 0.7});
    const double x[] = {0.0, 0.0};
    EXPECT_NEAR(m.log_pdf(x), d.log_pdf(x), 1e-12);
}

TEST(Mixture, WeightsAreNormalised) {
    GaussianMixture m({{2.0, {0.0}, {1.0}}, {6.0, {5.0}, {1.0}}});
    EXPECT_NEAR(m.component(0).weight, 0.25, 1e-12);
    EXPECT_NEAR(m.component(1).weight, 0.75, 1e-12);
}

TEST(Mixture, DensityIntegratesToOne) {
    GaussianMixture m({{0.3, {-2.0}, {0.5}}, {0.7, {3.0}, {1.0}}});
    double total = 0.0;
    const double h = 0.01;
    for (double x = -8.0; x < 9.0; x += h) {
        const double xv[] = {x};
        total += std::exp(m.log_pdf(xv)) * h;
    }
    EXPECT_NEAR(total, 1.0, 1e-3);
}

TEST(Mixture, SamplingRespectsWeights) {
    GaussianMixture m({{0.2, {-10.0}, {0.5}}, {0.8, {10.0}, {0.5}}});
    Engine eng(4);
    const Matrix x = m.sample(eng, 20000);
    int right = 0;
    for (std::size_t r = 0; r < x.rows(); ++r)
        if (x(r, 0) > 0.0) ++right;
    EXPECT_NEAR(static_cast<double>(right) / 20000.0, 0.8, 0.02);
}

TEST(Mixture, CeUpdateMovesTowardElite) {
    // Elite samples concentrated at +5; the proposal should shift there.
    GaussianMixture m = GaussianMixture::standard(1, 2);
    Engine eng(5);
    Matrix x(500, 1);
    std::vector<double> w(500);
    for (std::size_t r = 0; r < 500; ++r) {
        x(r, 0) = 5.0 + 0.3 * nofis::rng::standard_normal(eng);
        w[r] = 1.0;
    }
    m.ce_update(x, w);
    for (std::size_t k = 0; k < m.num_components(); ++k)
        EXPECT_NEAR(m.component(k).mean[0], 5.0, 0.2);
}

TEST(Mixture, CeUpdateRespectsSigmaFloor) {
    GaussianMixture m = GaussianMixture::standard(1, 1);
    Matrix x(100, 1);  // all identical -> zero variance
    std::vector<double> w(100, 1.0);
    for (std::size_t r = 0; r < 100; ++r) x(r, 0) = 2.0;
    m.ce_update(x, w, 0.25);
    EXPECT_GE(m.component(0).sigma[0], 0.25);
}

TEST(Mixture, CeUpdateIgnoresAllZeroWeights) {
    GaussianMixture m = GaussianMixture::standard(2, 2);
    Engine eng(6);
    const Matrix x = m.sample(eng, 50);
    std::vector<double> w(50, 0.0);
    const auto before = m.component(0).mean;
    m.ce_update(x, w);
    EXPECT_EQ(m.component(0).mean, before);
}

class MixtureRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MixtureRoundTrip, SampleMomentsMatchMixtureMoments) {
    // Two well-separated components in `dim` dimensions (2 = the toy cases,
    // 26 = YBranch): sample moments must reproduce the analytic mixture
    // mean Σ wᵢμᵢ and variance Σ wᵢ(σᵢ² + μᵢ²) − mean² per coordinate.
    const std::size_t dim = GetParam();
    std::vector<GaussianMixture::Component> comps(2);
    comps[0].weight = 0.3;
    comps[1].weight = 0.7;
    for (std::size_t j = 0; j < dim; ++j) {
        comps[0].mean.push_back(-2.0 + 0.1 * static_cast<double>(j));
        comps[0].sigma.push_back(0.8);
        comps[1].mean.push_back(1.5);
        comps[1].sigma.push_back(1.2);
    }
    const GaussianMixture m(comps);
    Engine eng(42);
    const Matrix x = m.sample(eng, 40000);
    ASSERT_EQ(x.cols(), dim);
    for (std::size_t j = 0; j < dim; ++j) {
        const double mu = 0.3 * comps[0].mean[j] + 0.7 * comps[1].mean[j];
        const double var = 0.3 * (0.8 * 0.8 + comps[0].mean[j] *
                                                  comps[0].mean[j]) +
                           0.7 * (1.2 * 1.2 + comps[1].mean[j] *
                                                  comps[1].mean[j]) -
                           mu * mu;
        double s1 = 0.0, s2 = 0.0;
        for (std::size_t r = 0; r < x.rows(); ++r) {
            s1 += x(r, j);
            s2 += x(r, j) * x(r, j);
        }
        const double sm = s1 / static_cast<double>(x.rows());
        const double sv = s2 / static_cast<double>(x.rows()) - sm * sm;
        EXPECT_NEAR(sm, mu, 0.05) << "dim " << j;
        EXPECT_NEAR(sv, var, 0.15) << "dim " << j;
    }
    // And the density agrees with where the samples actually land.
    double mean_lp = 0.0;
    for (std::size_t r = 0; r < 100; ++r)
        mean_lp += m.log_pdf(x.row_span(r));
    EXPECT_TRUE(std::isfinite(mean_lp));
}

INSTANTIATE_TEST_SUITE_P(Dims, MixtureRoundTrip,
                         ::testing::Values(std::size_t{2}, std::size_t{26}));

TEST(Mixture, LogPdfRejectsNonFiniteInput) {
    GaussianMixture m({{1.0, {0.0, 0.0}, {1.0, 1.0}}});
    const double nan = std::numeric_limits<double>::quiet_NaN();
    const double inf = std::numeric_limits<double>::infinity();
    const double bad_nan[] = {0.0, nan};
    const double bad_inf[] = {inf, 0.0};
    const double bad_ninf[] = {-inf, 0.0};
    EXPECT_THROW(m.log_pdf(bad_nan), std::invalid_argument);
    EXPECT_THROW(m.log_pdf(bad_inf), std::invalid_argument);
    EXPECT_THROW(m.log_pdf(bad_ninf), std::invalid_argument);
}

class MixtureSingleComponent : public ::testing::TestWithParam<std::size_t> {
};

TEST_P(MixtureSingleComponent, LogPdfMatchesDiagGaussianEverywhere) {
    const std::size_t dim = GetParam();
    std::vector<double> mean(dim), sigma(dim);
    for (std::size_t j = 0; j < dim; ++j) {
        mean[j] = 0.3 * static_cast<double>(j) - 1.0;
        sigma[j] = 0.5 + 0.1 * static_cast<double>(j);
    }
    const GaussianMixture m({{1.0, mean, sigma}});
    const DiagGaussian d(mean, sigma);
    Engine eng(8);
    const Matrix x = m.sample(eng, 200);
    for (std::size_t r = 0; r < x.rows(); ++r)
        EXPECT_NEAR(m.log_pdf(x.row_span(r)), d.log_pdf(x.row_span(r)),
                    1e-12)
            << "row " << r;
}

INSTANTIATE_TEST_SUITE_P(Dims, MixtureSingleComponent,
                         ::testing::Values(std::size_t{2}, std::size_t{26}));

TEST(Mixture, LogPdfRowsMatchesScalar) {
    GaussianMixture m({{0.5, {0.0, 0.0}, {1.0, 1.0}},
                       {0.5, {2.0, 2.0}, {0.5, 0.5}}});
    Engine eng(7);
    const Matrix x = m.sample(eng, 10);
    const auto rows = m.log_pdf_rows(x);
    for (std::size_t r = 0; r < 10; ++r)
        EXPECT_NEAR(rows[r], m.log_pdf(x.row_span(r)), 1e-14);
}

}  // namespace
