#include <gtest/gtest.h>

#include <cmath>

#include "photonic/ybranch.hpp"
#include "rng/normal.hpp"

namespace {

using nofis::photonic::YBranchModel;

TEST(YBranch, NominalTransmissionInDesignWindow) {
    YBranchModel model;
    const std::vector<double> nominal(26, 0.0);
    const double t = model.transmission(nominal);
    // Nominal arm transmission sits comfortably above the 32% failure spec.
    EXPECT_GT(t, 0.40);
    EXPECT_LT(t, 0.55);
}

TEST(YBranch, TransmissionBoundedByUnity) {
    YBranchModel model;
    nofis::rng::Engine eng(1);
    std::vector<double> x(26);
    for (int i = 0; i < 200; ++i) {
        nofis::rng::fill_standard_normal(eng, x);
        const double t = model.transmission(x);
        EXPECT_GE(t, 0.0);
        EXPECT_LE(t, 1.0) << "energy conservation violated";
    }
}

TEST(YBranch, DeformationReducesTransmissionOnAverage) {
    YBranchModel model;
    const std::vector<double> nominal(26, 0.0);
    const double t0 = model.transmission(nominal);
    nofis::rng::Engine eng(2);
    std::vector<double> x(26);
    double mean_deformed = 0.0;
    const int n = 300;
    for (int i = 0; i < n; ++i) {
        nofis::rng::fill_standard_normal(eng, x);
        for (double& v : x) v *= 2.0;  // strong deformation
        mean_deformed += model.transmission(x);
    }
    mean_deformed /= n;
    EXPECT_LT(mean_deformed, t0);
}

TEST(YBranch, WidthProfileReflectsFourierModes) {
    YBranchModel model;
    std::vector<double> x(26, 0.0);
    const auto w0 = model.width_profile(x);
    x[0] = 1.0;  // first sine mode: positive bump mid-taper
    const auto w1 = model.width_profile(x);
    ASSERT_EQ(w0.size(), w1.size());
    const std::size_t mid = w0.size() / 2;
    EXPECT_GT(w1[mid], w0[mid]);
    // Mode 1 vanishes at the taper ends.
    EXPECT_NEAR(w1.front(), w0.front(), 2e-3);
    EXPECT_NEAR(w1.back(), w0.back(), 2e-3);
}

TEST(YBranch, NominalWidthTapersMonotonically) {
    YBranchModel model;
    const auto w = model.width_profile(std::vector<double>(26, 0.0));
    for (std::size_t i = 1; i < w.size(); ++i) EXPECT_GT(w[i], w[i - 1]);
    EXPECT_NEAR(w.front(), 0.5, 0.01);
    EXPECT_NEAR(w.back(), 1.2, 0.01);
}

TEST(YBranch, SymmetricDeformationPairsGiveSimilarLoss) {
    // T depends on the deformation through coupling² and loss terms, so
    // x and -x give comparable (not wildly different) transmissions.
    YBranchModel model;
    nofis::rng::Engine eng(3);
    std::vector<double> x(26);
    nofis::rng::fill_standard_normal(eng, x);
    std::vector<double> neg(x);
    for (double& v : neg) v = -v;
    EXPECT_NEAR(model.transmission(x), model.transmission(neg), 0.05);
}

TEST(YBranch, ConfigurableSegmentsConverge) {
    // Halving the discretisation step changes T only slightly (the model is
    // a consistent discretisation, not segment-count noise).
    YBranchModel::Params p;
    p.segments = 64;
    YBranchModel coarse(p);
    p.segments = 128;
    YBranchModel fine(p);
    nofis::rng::Engine eng(4);
    std::vector<double> x(26);
    nofis::rng::fill_standard_normal(eng, x);
    EXPECT_NEAR(coarse.transmission(x), fine.transmission(x), 0.03);
}

TEST(YBranch, RejectsBadArguments) {
    YBranchModel model;
    EXPECT_THROW(model.transmission(std::vector<double>(3)),
                 std::invalid_argument);
    YBranchModel::Params p;
    p.segments = 1;
    EXPECT_THROW(YBranchModel{p}, std::invalid_argument);
}

}  // namespace
