// Tests for the telemetry/observability layer (src/telemetry) and the
// correctness fixes that rode along with it: span nesting and counter
// accumulation, JSON well-formedness of the exported record, the
// zero-perturbation contract (estimates bitwise identical with telemetry on
// or off), RAII stream-state guarding in the serializer and diagnostics,
// strict CLI numeric parsing, and corrupt-flow-file rejection.

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstdint>
#include <iomanip>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/nofis.hpp"
#include "flow/serialize.hpp"
#include "linalg/matrix.hpp"
#include "parallel/thread_pool.hpp"
#include "telemetry/telemetry.hpp"
#include "testcases/synthetic.hpp"
#include "util/ios_guard.hpp"
#include "util/parse.hpp"

namespace {

using namespace nofis;

/// Deactivates the global trace on scope exit so tests cannot leak an
/// active sink into each other.
struct TraceGuard {
    ~TraceGuard() { telemetry::set_active(nullptr); }
};

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON syntax checker — enough to assert the
// exporter always emits a parseable document (objects, arrays, strings,
// numbers, literals; no extensions).
// ---------------------------------------------------------------------------

class JsonChecker {
public:
    explicit JsonChecker(std::string text) : s_(std::move(text)) {}

    bool valid() {
        skip_ws();
        if (!value()) return false;
        skip_ws();
        return pos_ == s_.size();
    }

private:
    const std::string s_;
    std::size_t pos_ = 0;

    void skip_ws() {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_])))
            ++pos_;
    }
    bool eat(char c) {
        if (pos_ < s_.size() && s_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }
    bool literal(const char* lit) {
        const std::size_t n = std::char_traits<char>::length(lit);
        if (s_.compare(pos_, n, lit) != 0) return false;
        pos_ += n;
        return true;
    }
    bool string() {
        if (!eat('"')) return false;
        while (pos_ < s_.size() && s_[pos_] != '"') {
            if (s_[pos_] == '\\') {
                ++pos_;
                if (pos_ >= s_.size()) return false;
            }
            ++pos_;
        }
        return eat('"');
    }
    bool number() {
        const std::size_t start = pos_;
        if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
                s_[pos_] == '+' || s_[pos_] == '-'))
            ++pos_;
        return pos_ > start;
    }
    bool value() {
        skip_ws();
        if (pos_ >= s_.size()) return false;
        const char c = s_[pos_];
        if (c == '{') return object();
        if (c == '[') return array();
        if (c == '"') return string();
        if (c == 't') return literal("true");
        if (c == 'f') return literal("false");
        if (c == 'n') return literal("null");
        return number();
    }
    bool object() {
        if (!eat('{')) return false;
        skip_ws();
        if (eat('}')) return true;
        for (;;) {
            skip_ws();
            if (!string()) return false;
            skip_ws();
            if (!eat(':')) return false;
            if (!value()) return false;
            skip_ws();
            if (eat('}')) return true;
            if (!eat(',')) return false;
        }
    }
    bool array() {
        if (!eat('[')) return false;
        skip_ws();
        if (eat(']')) return true;
        for (;;) {
            if (!value()) return false;
            skip_ws();
            if (eat(']')) return true;
            if (!eat(',')) return false;
        }
    }
};

// ---------------------------------------------------------------------------
// Span tree & counters
// ---------------------------------------------------------------------------

TEST(Telemetry, ScopedSpansNestAndAccumulate) {
    TraceGuard guard;
    telemetry::RunTrace trace;
    telemetry::set_active(&trace);

    for (int i = 0; i < 3; ++i) {
        telemetry::ScopedSpan outer("outer");
        {
            telemetry::ScopedSpan inner("inner");
        }
        {
            telemetry::ScopedSpan inner("inner");
        }
    }
    telemetry::set_active(nullptr);

    const telemetry::SpanNode* outer = trace.root().find("outer");
    ASSERT_NE(outer, nullptr);
    EXPECT_EQ(outer->count, 3u);
    EXPECT_GE(outer->wall_ms, 0.0);
    // "inner" nested under "outer", re-entered twice per outer pass — one
    // accumulated node, not six siblings.
    ASSERT_EQ(outer->children.size(), 1u);
    const telemetry::SpanNode* inner = outer->find("inner");
    ASSERT_NE(inner, nullptr);
    EXPECT_EQ(inner->count, 6u);
    EXPECT_LE(inner->wall_ms, outer->wall_ms + 1e-9);
    // Nothing at root level besides "outer".
    EXPECT_EQ(trace.root().find("inner"), nullptr);
}

TEST(Telemetry, SpansAreNoOpsWhenInactive) {
    telemetry::RunTrace trace;
    {
        telemetry::ScopedSpan span("orphan");
    }
    EXPECT_TRUE(trace.root().children.empty());
    EXPECT_EQ(telemetry::active(), nullptr);
}

TEST(Telemetry, SpansFromNonOwnerThreadsAreIgnored) {
    TraceGuard guard;
    telemetry::RunTrace trace;
    telemetry::set_active(&trace);
    std::thread worker([] {
        telemetry::ScopedSpan span("worker_span");  // must not touch the tree
        telemetry::count("worker_counter", 2);      // counters are allowed
    });
    worker.join();
    telemetry::set_active(nullptr);
    EXPECT_EQ(trace.root().find("worker_span"), nullptr);
    EXPECT_EQ(trace.counter("worker_counter"), 2u);
}

TEST(Telemetry, CountersAccumulateAcrossThreads) {
    TraceGuard guard;
    telemetry::RunTrace trace;
    telemetry::set_active(&trace);
    std::vector<std::thread> workers;
    for (int t = 0; t < 4; ++t)
        workers.emplace_back([] {
            for (int i = 0; i < 1000; ++i) telemetry::count("hits");
        });
    for (auto& w : workers) w.join();
    telemetry::count("hits", 5);
    telemetry::set_active(nullptr);
    EXPECT_EQ(trace.counter("hits"), 4005u);
    EXPECT_EQ(trace.counter("never_written"), 0u);
}

TEST(Telemetry, MetricsLastWriteWins) {
    telemetry::RunTrace trace;
    trace.set_metric("ess", 1.5);
    trace.set_metric("ess", 2.5);
    EXPECT_EQ(trace.metric("ess"), 2.5);
    EXPECT_FALSE(trace.has_metric("missing"));
    EXPECT_EQ(trace.metric("missing", -1.0), -1.0);
}

// ---------------------------------------------------------------------------
// JSON export
// ---------------------------------------------------------------------------

TEST(TelemetryJson, RecordIsWellFormed) {
    TraceGuard guard;
    telemetry::RunTrace trace;
    telemetry::set_active(&trace);
    {
        telemetry::ScopedSpan run("nofis_run");
        telemetry::ScopedSpan stage("stage_1");
        telemetry::ScopedSpan phase("g_eval");
    }
    trace.add_counter("calls", 123);
    trace.set_metric("ess_all", 45.5);
    // Hostile inputs: names needing escapes, non-finite metric values.
    trace.add_counter("weird \"name\"\n\t\\", 1);
    trace.set_metric("bad_metric", std::nan(""));
    trace.set_metric("big_metric", INFINITY);
    telemetry::set_active(nullptr);

    const std::string json = trace.to_json();
    JsonChecker checker(json);
    EXPECT_TRUE(checker.valid()) << json;
    EXPECT_NE(json.find("\"schema\":\"nofis-metrics-v1\""), std::string::npos);
    EXPECT_NE(json.find("\"wall_ms\""), std::string::npos);
    EXPECT_NE(json.find("\"ess_all\""), std::string::npos);
    EXPECT_NE(json.find("\"calls\""), std::string::npos);
    // Non-finite numbers must be emitted as null, never as nan/inf tokens.
    EXPECT_NE(json.find("\"bad_metric\":null"), std::string::npos);
    EXPECT_NE(json.find("\"big_metric\":null"), std::string::npos);
    EXPECT_EQ(json.find("nan"), std::string::npos);
    EXPECT_EQ(json.find("inf"), std::string::npos);
}

TEST(TelemetryJson, EmptyTraceStillParses) {
    const telemetry::RunTrace trace;
    JsonChecker checker(trace.to_json());
    EXPECT_TRUE(checker.valid()) << trace.to_json();
}

// ---------------------------------------------------------------------------
// The zero-perturbation contract: telemetry on vs. off is bitwise invisible
// in every number the estimator produces.
// ---------------------------------------------------------------------------

struct RunFingerprint {
    double p_hat = 0.0;
    std::size_t calls = 0;
    std::vector<double> losses;
};

RunFingerprint run_leaf(bool with_telemetry, telemetry::RunTrace* trace) {
    const testcases::LeafCase leaf;
    core::NofisConfig cfg;
    cfg.epochs = 6;
    cfg.samples_per_epoch = 30;
    cfg.n_is = 200;
    cfg.hidden = {16, 16};
    cfg.layers_per_block = 4;
    core::NofisEstimator est(cfg,
                             core::LevelSchedule::manual({8.0, 3.0, 0.0}));
    if (with_telemetry) telemetry::set_active(trace);
    rng::Engine eng(41);
    const auto run = est.run(leaf, eng);
    telemetry::set_active(nullptr);

    RunFingerprint fp;
    fp.p_hat = run.estimate.p_hat;
    fp.calls = run.estimate.calls;
    for (const auto& s : run.stages)
        for (double v : s.epoch_loss) fp.losses.push_back(v);
    return fp;
}

TEST(TelemetryDeterminism, EstimateBitwiseIdenticalOnAndOff) {
    TraceGuard guard;
    const RunFingerprint off = run_leaf(false, nullptr);
    telemetry::RunTrace trace;
    const RunFingerprint on = run_leaf(true, &trace);

    EXPECT_TRUE(std::isfinite(off.p_hat));
    EXPECT_EQ(off.p_hat, on.p_hat);  // bitwise: no tolerance
    EXPECT_EQ(off.calls, on.calls);
    ASSERT_EQ(off.losses.size(), on.losses.size());
    for (std::size_t i = 0; i < off.losses.size(); ++i)
        EXPECT_EQ(off.losses[i], on.losses[i]) << "epoch " << i;

    // And the instrumented run actually recorded the expected record: the
    // stage/phase spans, honest g-call counters, and proposal metrics.
    const telemetry::SpanNode* run_span = trace.root().find("nofis_run");
    ASSERT_NE(run_span, nullptr);
    const telemetry::SpanNode* train = run_span->find("train");
    ASSERT_NE(train, nullptr);
    ASSERT_EQ(train->children.size(), 3u);  // one span per stage
    const telemetry::SpanNode* stage1 = train->find("stage_1");
    ASSERT_NE(stage1, nullptr);
    for (const char* phase : {"sample_forward", "g_eval", "backward"}) {
        const telemetry::SpanNode* p = stage1->find(phase);
        ASSERT_NE(p, nullptr) << phase;
        EXPECT_EQ(p->count, 6u) << phase;  // one entry per epoch
    }
    EXPECT_NE(run_span->find("final_is"), nullptr);
    EXPECT_EQ(trace.counter("g_calls.train"), 3u * 6u * 30u);
    EXPECT_EQ(trace.counter("g_calls.final_is"), 200u);
    EXPECT_EQ(trace.counter("calls"), on.calls);
    EXPECT_TRUE(trace.has_metric("ess_all"));
    EXPECT_TRUE(trace.has_metric("weight_cv"));
    EXPECT_EQ(trace.metric("p_hat"), on.p_hat);
}

TEST(TelemetryDeterminism, PoolStatsExportPopulatesLaneMetrics) {
    TraceGuard guard;
    parallel::set_num_threads(3);
    telemetry::RunTrace trace;
    telemetry::set_active(&trace);
    linalg::Matrix a(64, 64, 1.0);
    linalg::Matrix b(64, 64, 0.5);
    const linalg::Matrix c = a.matmul(b);  // above the tiled threshold
    EXPECT_EQ(c(0, 0), 32.0);
    telemetry::set_active(nullptr);
    parallel::export_pool_stats(trace);
    parallel::set_num_threads(0);

    EXPECT_GE(trace.counter("matmul.tiled_calls"), 1u);
    EXPECT_GE(trace.counter("matmul.tiled_madds"), 64u * 64u * 64u);
    EXPECT_EQ(trace.metric("pool.lanes"), 3.0);
    EXPECT_TRUE(trace.has_metric("pool.lane0.busy_ms"));
    EXPECT_TRUE(trace.has_metric("pool.lane2.busy_ms"));
    EXPECT_GE(trace.counter("pool.jobs"), 1u);
}

// ---------------------------------------------------------------------------
// Satellite bugfix regressions
// ---------------------------------------------------------------------------

// save_stack used to leave setprecision(17) on the caller's stream; the
// RunHealth summary similarly pinned setprecision(4). Both now restore the
// caller's format state.
TEST(StreamStateGuard, SaveStackLeavesCallerPrecisionUntouched) {
    flow::StackConfig scfg;
    scfg.dim = 2;
    scfg.num_blocks = 1;
    scfg.layers_per_block = 2;
    scfg.hidden = {4};
    rng::Engine eng(3);
    const flow::CouplingStack stack(scfg, eng);

    std::ostringstream os;
    os << std::setprecision(3) << std::fixed;
    const auto flags_before = os.flags();
    flow::save_stack(stack, os);
    EXPECT_EQ(os.precision(), 3);
    EXPECT_EQ(os.flags(), flags_before);
    // The stream still formats the caller's way after the call.
    os.str("");
    os << 1.23456789;
    EXPECT_EQ(os.str(), "1.235");
}

TEST(StreamStateGuard, SavedStackStillRoundTripsAtFullPrecision) {
    flow::StackConfig scfg;
    scfg.dim = 3;
    scfg.num_blocks = 2;
    scfg.layers_per_block = 2;
    scfg.hidden = {4};
    rng::Engine eng(11);
    const flow::CouplingStack stack(scfg, eng);

    std::stringstream ss;
    ss << std::setprecision(2);  // must not degrade the saved doubles
    flow::save_stack(stack, ss);
    const flow::CouplingStack loaded = flow::load_stack(ss);
    const auto orig = stack.params();
    const auto got = loaded.params();
    ASSERT_EQ(orig.size(), got.size());
    for (std::size_t i = 0; i < orig.size(); ++i)
        EXPECT_EQ(linalg::max_abs_diff(orig[i].value(), got[i].value()), 0.0);
}

TEST(StreamStateGuard, IosStateGuardRestoresOnScopeExit) {
    std::ostringstream os;
    os << std::setprecision(5);
    {
        util::IosStateGuard guard(os);
        os << std::setprecision(17) << std::scientific << std::setw(30);
    }
    EXPECT_EQ(os.precision(), 5);
    EXPECT_EQ(os.width(), 0);
    EXPECT_FALSE(os.flags() & std::ios_base::scientific);
}

TEST(StrictParse, RejectsMalformedNumbers) {
    using util::parse_double;
    using util::parse_u64;

    // The exact failure the CLI used to hide: "--repeats abc" -> 0.
    EXPECT_FALSE(parse_u64("abc").has_value());
    EXPECT_FALSE(parse_u64("").has_value());
    EXPECT_FALSE(parse_u64("12x").has_value());
    EXPECT_FALSE(parse_u64("-3").has_value());
    EXPECT_FALSE(parse_u64("+3").has_value());
    EXPECT_FALSE(parse_u64(" 3").has_value());
    EXPECT_FALSE(parse_u64("3 ").has_value());
    EXPECT_FALSE(parse_u64("1.5").has_value());
    EXPECT_FALSE(parse_u64("99999999999999999999999").has_value());  // ERANGE

    EXPECT_FALSE(parse_double("abc").has_value());
    EXPECT_FALSE(parse_double("").has_value());
    EXPECT_FALSE(parse_double("0.5x").has_value());
    EXPECT_FALSE(parse_double(" 0.5").has_value());
    EXPECT_FALSE(parse_double("1e999").has_value());  // overflow
    EXPECT_FALSE(parse_double("nan").has_value());
    EXPECT_FALSE(parse_double("inf").has_value());
}

TEST(StrictParse, AcceptsExactNumbers) {
    using util::parse_double;
    using util::parse_u64;

    EXPECT_EQ(parse_u64("0").value(), 0u);
    EXPECT_EQ(parse_u64("42").value(), 42u);
    EXPECT_EQ(parse_u64("18446744073709551615").value(), UINT64_MAX);
    EXPECT_EQ(parse_double("0.5").value(), 0.5);
    EXPECT_EQ(parse_double("-2.5e-3").value(), -2.5e-3);
    EXPECT_EQ(parse_double("7").value(), 7.0);
}

TEST(CorruptFlowFile, AbsurdHeaderSizesAreRejectedBeforeAllocation) {
    // A corrupt dim field would otherwise size matrices at ~10^12 entries.
    {
        std::istringstream is(
            "nofisflow-v1\n999999999999 1 2 2.0 affine 0\n1 4\n");
        EXPECT_THROW(flow::load_stack(is), std::runtime_error);
    }
    {
        std::istringstream is(
            "nofisflow-v1\n2 999999999 2 2.0 affine 0\n1 4\n");
        EXPECT_THROW(flow::load_stack(is), std::runtime_error);
    }
    {
        // Hidden-layer count from a truncated/garbage stream.
        std::istringstream is(
            "nofisflow-v1\n2 1 2 2.0 affine 0\n888888888\n");
        EXPECT_THROW(flow::load_stack(is), std::runtime_error);
    }
    {
        // Unknown coupling kind used to silently map to additive.
        std::istringstream is(
            "nofisflow-v1\n2 1 2 2.0 banana 0\n1 4\n");
        EXPECT_THROW(flow::load_stack(is), std::runtime_error);
    }
    {
        // Zero dim / zero blocks are as corrupt as absurdly large ones.
        std::istringstream is("nofisflow-v1\n0 1 2 2.0 affine 0\n1 4\n");
        EXPECT_THROW(flow::load_stack(is), std::runtime_error);
    }
}

TEST(CorruptFlowFile, TruncatedHeaderAndBadMagicStillFail) {
    {
        std::istringstream is("not-a-flow-file\n");
        EXPECT_THROW(flow::load_stack(is), std::runtime_error);
    }
    {
        std::istringstream is("nofisflow-v1\n2 1");
        EXPECT_THROW(flow::load_stack(is), std::runtime_error);
    }
}

TEST(CorruptFlowFile, ErrorsCarryTheStructuredPrefix) {
    std::istringstream is(
        "nofisflow-v1\n999999999999 1 2 2.0 affine 0\n1 4\n");
    try {
        flow::load_stack(is);
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("flow serialisation:"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("implausible"),
                  std::string::npos);
    }
}

}  // namespace
