#include <gtest/gtest.h>

#include <cmath>

#include "autodiff/gradcheck.hpp"
#include "autodiff/ops.hpp"
#include "rng/normal.hpp"

namespace {

using namespace nofis::autodiff;
using nofis::linalg::Matrix;
using nofis::rng::Engine;

Matrix random_matrix(std::uint64_t seed, std::size_t r, std::size_t c) {
    Engine eng(seed);
    return nofis::rng::standard_normal_matrix(eng, r, c);
}

// ---------------------------------------------------------------------------
// Basic graph mechanics
// ---------------------------------------------------------------------------

TEST(Var, BackwardRequiresScalar) {
    Var x(Matrix(2, 2), true);
    EXPECT_THROW(x.backward(), std::logic_error);
}

TEST(Var, SimpleChainGradient) {
    // f = sum(3 * x) -> df/dx = 3.
    Var x(Matrix{{1.0, 2.0}}, true);
    Var f = sum(scale(x, 3.0));
    f.backward();
    EXPECT_DOUBLE_EQ(x.grad()(0, 0), 3.0);
    EXPECT_DOUBLE_EQ(x.grad()(0, 1), 3.0);
}

TEST(Var, GradientAccumulatesAcrossBackwardCalls) {
    Var x(Matrix{{1.0}}, true);
    sum(scale(x, 2.0)).backward();
    sum(scale(x, 2.0)).backward();
    EXPECT_DOUBLE_EQ(x.grad()(0, 0), 4.0);
    x.zero_grad();
    EXPECT_DOUBLE_EQ(x.grad()(0, 0), 0.0);
}

TEST(Var, DiamondGraphSumsBothPaths) {
    // f = sum(x + x) -> df/dx = 2 (the node is reused).
    Var x(Matrix{{1.0, 1.0}}, true);
    Var f = sum(add(x, x));
    f.backward();
    EXPECT_DOUBLE_EQ(x.grad()(0, 0), 2.0);
}

TEST(Var, NoGradThroughConstLeaves) {
    Var x(Matrix{{1.0}}, false);
    Var y(Matrix{{2.0}}, true);
    Var f = sum(mul(x, y));
    f.backward();
    EXPECT_DOUBLE_EQ(y.grad()(0, 0), 1.0);
    EXPECT_TRUE(x.grad().empty());
}

TEST(Var, FrozenSubgraphIsPruned) {
    // Result of ops on non-grad leaves has requires_grad == false.
    Var x(Matrix{{1.0}}, false);
    Var h = tanh_v(scale(x, 2.0));
    EXPECT_FALSE(h.requires_grad());
}

// ---------------------------------------------------------------------------
// Finite-difference verification of every op (parameterized over shapes)
// ---------------------------------------------------------------------------

struct Shape {
    std::size_t rows;
    std::size_t cols;
};

class OpGradCheck : public ::testing::TestWithParam<Shape> {
protected:
    Matrix input() const {
        return random_matrix(17 + GetParam().rows * 31 + GetParam().cols,
                             GetParam().rows, GetParam().cols);
    }
};

TEST_P(OpGradCheck, Tanh) {
    const auto res = grad_check(
        [](const Var& x) { return sum(tanh_v(x)); }, input());
    EXPECT_TRUE(res.passed) << res.max_rel_error;
}

TEST_P(OpGradCheck, Sigmoid) {
    const auto res = grad_check(
        [](const Var& x) { return sum(sigmoid_v(x)); }, input());
    EXPECT_TRUE(res.passed) << res.max_rel_error;
}

TEST_P(OpGradCheck, Exp) {
    const auto res = grad_check([](const Var& x) { return sum(exp_v(x)); },
                                input());
    EXPECT_TRUE(res.passed) << res.max_rel_error;
}

TEST_P(OpGradCheck, Softplus) {
    const auto res = grad_check(
        [](const Var& x) { return sum(softplus_v(x)); }, input());
    EXPECT_TRUE(res.passed) << res.max_rel_error;
}

TEST_P(OpGradCheck, Square) {
    const auto res = grad_check(
        [](const Var& x) { return sum(square_v(x)); }, input());
    EXPECT_TRUE(res.passed) << res.max_rel_error;
}

TEST_P(OpGradCheck, LogOfPositive) {
    Matrix in = input().map([](double v) { return std::abs(v) + 0.5; });
    const auto res = grad_check([](const Var& x) { return sum(log_v(x)); },
                                in);
    EXPECT_TRUE(res.passed) << res.max_rel_error;
}

TEST_P(OpGradCheck, LeakyRelu) {
    // Keep inputs away from the kink where FD is invalid.
    Matrix in = input().map(
        [](double v) { return std::abs(v) < 0.05 ? v + 0.2 : v; });
    const auto res = grad_check(
        [](const Var& x) { return sum(leaky_relu_v(x)); }, in);
    EXPECT_TRUE(res.passed) << res.max_rel_error;
}

TEST_P(OpGradCheck, MeanAndScale) {
    const auto res = grad_check(
        [](const Var& x) { return mean(scale(x, -2.5)); }, input());
    EXPECT_TRUE(res.passed) << res.max_rel_error;
}

TEST_P(OpGradCheck, RowSumsComposition) {
    const auto res = grad_check(
        [](const Var& x) { return sum(square_v(row_sums(x))); }, input());
    EXPECT_TRUE(res.passed) << res.max_rel_error;
}

TEST_P(OpGradCheck, MatmulLeft) {
    const Matrix rhs = random_matrix(5, GetParam().cols, 3);
    const auto res = grad_check(
        [&rhs](const Var& x) { return sum(matmul(x, Var(rhs))); }, input());
    EXPECT_TRUE(res.passed) << res.max_rel_error;
}

TEST_P(OpGradCheck, MatmulRightThroughBoth) {
    // Gradient w.r.t. the right operand via a quadratic composition.
    const Matrix lhs = random_matrix(6, 3, GetParam().rows);
    const auto res = grad_check(
        [&lhs](const Var& x) {
            Var l(lhs, false);
            return sum(square_v(matmul(l, x)));
        },
        input());
    EXPECT_TRUE(res.passed) << res.max_rel_error;
}

TEST_P(OpGradCheck, MulElementwise) {
    const Matrix other = random_matrix(7, GetParam().rows, GetParam().cols);
    const auto res = grad_check(
        [&other](const Var& x) { return sum(mul(x, Var(other))); }, input());
    EXPECT_TRUE(res.passed) << res.max_rel_error;
}

TEST_P(OpGradCheck, MulBothOperandsSameLeaf) {
    const auto res = grad_check([](const Var& x) { return sum(mul(x, x)); },
                                input());
    EXPECT_TRUE(res.passed) << res.max_rel_error;
}

TEST_P(OpGradCheck, SubAndNeg) {
    const Matrix other = random_matrix(9, GetParam().rows, GetParam().cols);
    const auto res = grad_check(
        [&other](const Var& x) { return sum(sub(neg(x), Var(other))); },
        input());
    EXPECT_TRUE(res.passed) << res.max_rel_error;
}

TEST_P(OpGradCheck, HadamardConst) {
    const Matrix c = random_matrix(10, GetParam().rows, GetParam().cols);
    const auto res = grad_check(
        [&c](const Var& x) { return sum(hadamard_const(x, c)); }, input());
    EXPECT_TRUE(res.passed) << res.max_rel_error;
}

TEST_P(OpGradCheck, DotConstant) {
    const Matrix c = random_matrix(11, GetParam().rows, GetParam().cols);
    const auto res = grad_check(
        [&c](const Var& x) { return dot_constant(x, c); }, input());
    EXPECT_TRUE(res.passed) << res.max_rel_error;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, OpGradCheck,
    ::testing::Values(Shape{1, 1}, Shape{1, 4}, Shape{3, 1}, Shape{2, 3},
                      Shape{5, 5}));

// ---------------------------------------------------------------------------
// Structural ops
// ---------------------------------------------------------------------------

TEST(StructuralOps, AddBiasGradcheckBothOperands) {
    const Matrix x0 = random_matrix(21, 4, 3);
    const Matrix b0 = random_matrix(22, 1, 3);
    auto res = grad_check(
        [&b0](const Var& x) { return sum(square_v(add_bias(x, Var(b0, false)))); },
        x0);
    EXPECT_TRUE(res.passed) << res.max_rel_error;
    res = grad_check(
        [&x0](const Var& b) { return sum(square_v(add_bias(Var(x0), b))); },
        b0);
    EXPECT_TRUE(res.passed) << res.max_rel_error;
}

TEST(StructuralOps, SelectColsGradScattersBack) {
    Var x(Matrix{{1.0, 2.0, 3.0}}, true);
    const std::size_t idx[] = {2, 0};
    Var sel = select_cols(x, idx);
    EXPECT_DOUBLE_EQ(sel.value()(0, 0), 3.0);
    EXPECT_DOUBLE_EQ(sel.value()(0, 1), 1.0);
    sum(mul(sel, sel)).backward();
    EXPECT_DOUBLE_EQ(x.grad()(0, 0), 2.0);   // 2*x0
    EXPECT_DOUBLE_EQ(x.grad()(0, 1), 0.0);   // unselected
    EXPECT_DOUBLE_EQ(x.grad()(0, 2), 6.0);   // 2*x2
}

TEST(StructuralOps, CombineColsRoundTrip) {
    Var a(Matrix{{1.0, 2.0}}, true);
    Var b(Matrix{{3.0}}, true);
    const std::size_t ia[] = {0, 2};
    const std::size_t ib[] = {1};
    Var y = combine_cols(a, ia, b, ib, 3);
    EXPECT_DOUBLE_EQ(y.value()(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(y.value()(0, 1), 3.0);
    EXPECT_DOUBLE_EQ(y.value()(0, 2), 2.0);
    sum(scale(y, 2.0)).backward();
    EXPECT_DOUBLE_EQ(a.grad()(0, 0), 2.0);
    EXPECT_DOUBLE_EQ(b.grad()(0, 0), 2.0);
}

TEST(StructuralOps, CombineColsValidatesPartition) {
    Var a(Matrix(1, 2), true);
    Var b(Matrix(1, 2), true);
    const std::size_t ia[] = {0, 1};
    const std::size_t ib[] = {2, 3};
    EXPECT_NO_THROW(combine_cols(a, ia, b, ib, 4));
    EXPECT_THROW(combine_cols(a, ia, b, ib, 5), std::invalid_argument);
}

TEST(StructuralOps, ShapeMismatchThrows) {
    Var a(Matrix(2, 3), true);
    Var b(Matrix(3, 2), true);
    EXPECT_THROW(add(a, b), std::invalid_argument);
    EXPECT_THROW(mul(a, b), std::invalid_argument);
    EXPECT_THROW(matmul(a, a), std::invalid_argument);
    EXPECT_THROW(add_bias(a, Var(Matrix(1, 2))), std::invalid_argument);
    EXPECT_THROW(dot_constant(a, Matrix(1, 1)), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Rational-quadratic spline op
// ---------------------------------------------------------------------------

TEST(RqsForward, GradChecksInput) {
    // 3 transformed dims, 4 bins → 13 raw params per dim. Random raw params
    // exercise non-uniform bins and knot slopes; gradcheck covers both the
    // y and log-det outputs.
    const std::size_t bins = 4;
    const Matrix h0 = random_matrix(31, 5, 3 * (3 * bins + 1));
    Matrix xb0 = random_matrix(32, 5, 3);
    // Keep inputs away from ±tail_bound (derivative kink) and bin knots are
    // random so clashes are measure-zero.
    for (double& v : xb0.flat()) v *= 0.8;
    const auto res = grad_check(
        [&h0, bins](const Var& xb) {
            auto f = rqs_forward(xb, Var(h0, false), bins, 3.0);
            return add(sum(square_v(f.y)), sum(f.log_det));
        },
        xb0);
    EXPECT_TRUE(res.passed) << res.max_rel_error;
}

TEST(RqsForward, GradChecksParams) {
    // Perturbing h moves every raw-parameter group (widths, heights,
    // derivatives) through softmax/softplus into the spline.
    const std::size_t bins = 4;
    Matrix xb0 = random_matrix(33, 5, 2);
    for (double& v : xb0.flat()) v *= 0.8;
    const Matrix h0 = random_matrix(34, 5, 2 * (3 * bins + 1));
    const auto res = grad_check(
        [&xb0, bins](const Var& h) {
            auto f = rqs_forward(Var(xb0, false), h, bins, 3.0);
            return add(sum(square_v(f.y)), sum(f.log_det));
        },
        h0);
    EXPECT_TRUE(res.passed) << res.max_rel_error;
}

TEST(RqsForward, TailInputsHaveUnitGradientAndZeroParamGrad) {
    // Outside the interval the map is the identity: dy/dx = 1 and no
    // gradient flows into the spline parameters.
    const std::size_t bins = 4;
    Var xb(Matrix{{5.0, -7.0}}, true);
    Var h(random_matrix(35, 1, 2 * (3 * bins + 1)), true);
    auto f = rqs_forward(xb, h, bins, 3.0);
    EXPECT_DOUBLE_EQ(f.y.value()(0, 0), 5.0);
    EXPECT_DOUBLE_EQ(f.y.value()(0, 1), -7.0);
    EXPECT_DOUBLE_EQ(f.log_det.value()(0, 0), 0.0);
    sum(f.y).backward();
    EXPECT_DOUBLE_EQ(xb.grad()(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(xb.grad()(0, 1), 1.0);
    EXPECT_DOUBLE_EQ(h.grad().max_abs(), 0.0);
}

TEST(RqsForward, ValidatesShapes) {
    Var xb(Matrix(2, 3), true);
    Var h(Matrix(2, 3 * 13), true);
    EXPECT_NO_THROW(rqs_forward(xb, h, 4, 3.0));
    EXPECT_THROW(rqs_forward(xb, Var(Matrix(2, 5)), 4, 3.0),
                 std::invalid_argument);
    EXPECT_THROW(rqs_forward(Var(Matrix(3, 3)), h, 4, 3.0),
                 std::invalid_argument);
    EXPECT_THROW(rqs_forward(xb, h, 0, 3.0), std::invalid_argument);
}

TEST(GradCheckHarness, DetectsWrongGradient) {
    // A deliberately wrong "gradient" (treating d(x^2) as 1) must fail.
    const auto res = grad_check(
        [](const Var& x) {
            // sum(x ⊙ stop_grad(x)): gradient through one factor only,
            // giving x instead of 2x.
            return sum(hadamard_const(x, x.value()));
        },
        Matrix{{1.0, -2.0}});
    EXPECT_FALSE(res.passed);
}

}  // namespace
