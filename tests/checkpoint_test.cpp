#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "autodiff/ops.hpp"
#include "autodiff/var.hpp"
#include "checkpoint/checkpoint.hpp"
#include "core/levels.hpp"
#include "core/nofis.hpp"
#include "estimators/guarded_problem.hpp"
#include "evalcache/eval_cache.hpp"
#include "nn/optimizer.hpp"
#include "parallel/thread_pool.hpp"
#include "rng/engine.hpp"
#include "testcases/fault_injector.hpp"
#include "util/atomic_file.hpp"
#include "util/io_fault.hpp"

namespace {

using namespace nofis;
using core::LevelSchedule;
using core::NofisConfig;
using core::NofisEstimator;

namespace fs = std::filesystem;

/// Ω = {x0 >= t}; cheap and analytic so every test below is about the
/// checkpoint machinery, not the model.
class HalfSpace2D final : public estimators::RareEventProblem {
public:
    explicit HalfSpace2D(double t) : t_(t) {}
    std::size_t dim() const noexcept override { return 2; }
    double g(std::span<const double> x) const override { return t_ - x[0]; }
    double g_grad(std::span<const double> x,
                  std::span<double> grad) const override {
        grad[0] = -1.0;
        grad[1] = 0.0;
        return t_ - x[0];
    }

private:
    double t_;
};

struct PoolGuard {
    ~PoolGuard() { parallel::set_num_threads(0); }
};

/// The stop flag is process-global; never leak it into a later test.
struct StopGuard {
    ~StopGuard() { checkpoint::reset_stop_request(); }
};

/// Unique temp directory per test, removed on teardown.
class TempDirFixture : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = ::testing::TempDir() + "nofis_ckpt_" +
               ::testing::UnitTest::GetInstance()->current_test_info()->name();
        fs::remove_all(dir_);
        fs::create_directories(dir_);
    }
    void TearDown() override { fs::remove_all(dir_); }

    std::string dir_;
};

using CheckpointTest = TempDirFixture;
using CheckpointResumeTest = TempDirFixture;

NofisConfig tiny_config() {
    NofisConfig cfg;
    cfg.layers_per_block = 4;
    cfg.hidden = {8, 8};
    cfg.epochs = 6;
    cfg.samples_per_epoch = 24;
    cfg.learning_rate = 7e-3;
    cfg.tau = 10.0;
    cfg.n_is = 200;
    return cfg;
}

LevelSchedule tiny_levels() {
    return LevelSchedule::manual({1.2, 0.5, 0.0});
}

std::uint64_t bits(double v) {
    std::uint64_t u = 0;
    std::memcpy(&u, &v, sizeof(u));
    return u;
}

/// Bitwise equality on every externally observable piece of a RunResult:
/// the estimate, the per-stage diagnostics (NaN sentinels included), the
/// IS diagnostics, and the health ledger. This is the acceptance bar for
/// "resumed == uninterrupted".
void expect_same_run(const NofisEstimator::RunResult& a,
                     const NofisEstimator::RunResult& b) {
    EXPECT_EQ(bits(a.estimate.p_hat), bits(b.estimate.p_hat));
    EXPECT_EQ(a.estimate.calls, b.estimate.calls);
    EXPECT_EQ(a.estimate.cached_calls, b.estimate.cached_calls);
    EXPECT_EQ(a.estimate.failed, b.estimate.failed);

    ASSERT_EQ(a.stages.size(), b.stages.size());
    for (std::size_t i = 0; i < a.stages.size(); ++i) {
        const auto& sa = a.stages[i];
        const auto& sb = b.stages[i];
        EXPECT_EQ(sa.stage, sb.stage);
        EXPECT_EQ(bits(sa.level), bits(sb.level));
        ASSERT_EQ(sa.epoch_loss.size(), sb.epoch_loss.size()) << "stage " << i;
        for (std::size_t e = 0; e < sa.epoch_loss.size(); ++e)
            EXPECT_EQ(bits(sa.epoch_loss[e]), bits(sb.epoch_loss[e]))
                << "stage " << i << " epoch " << e;
        EXPECT_EQ(bits(sa.inside_fraction), bits(sb.inside_fraction));
        EXPECT_EQ(sa.retries, sb.retries);
        EXPECT_EQ(sa.retry_reasons, sb.retry_reasons);
        EXPECT_EQ(sa.skipped_epochs, sb.skipped_epochs);
    }

    EXPECT_EQ(bits(a.is_diag.max_weight), bits(b.is_diag.max_weight));
    EXPECT_EQ(bits(a.is_diag.effective_sample_size),
              bits(b.is_diag.effective_sample_size));
    EXPECT_EQ(a.is_diag.hits, b.is_diag.hits);
    EXPECT_EQ(a.is_diag.draws, b.is_diag.draws);
    EXPECT_EQ(bits(a.is_diag.ess_all), bits(b.is_diag.ess_all));
    EXPECT_EQ(bits(a.is_diag.weight_cv), bits(b.is_diag.weight_cv));

    EXPECT_EQ(a.health.faults.counts, b.health.faults.counts);
    EXPECT_EQ(a.health.faults.retry_attempts, b.health.faults.retry_attempts);
    EXPECT_EQ(a.health.faults.recovered, b.health.faults.recovered);
    EXPECT_EQ(a.health.faults.clamped, b.health.faults.clamped);
    EXPECT_EQ(a.health.faults.propagated, b.health.faults.propagated);
    EXPECT_EQ(a.health.g_retry_calls, b.health.g_retry_calls);
    EXPECT_EQ(a.health.stage_retries, b.health.stage_retries);
    EXPECT_EQ(a.health.stages_rolled_back, b.health.stages_rolled_back);
    EXPECT_EQ(a.health.skipped_epochs, b.health.skipped_epochs);
}

std::vector<fs::path> snapshot_files(const std::string& dir) {
    std::vector<fs::path> out;
    for (const auto& entry : fs::directory_iterator(dir))
        if (entry.path().extension() == ".nofisckpt")
            out.push_back(entry.path());
    std::sort(out.begin(), out.end());
    return out;
}

void flip_one_bit(const fs::path& path, std::size_t byte_offset) {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.is_open());
    f.seekg(0, std::ios::end);
    const auto size = static_cast<std::size_t>(f.tellg());
    ASSERT_LT(byte_offset, size);
    f.seekg(static_cast<std::streamoff>(byte_offset));
    char c = 0;
    f.read(&c, 1);
    c = static_cast<char>(c ^ 0x10);
    f.seekp(static_cast<std::streamoff>(byte_offset));
    f.write(&c, 1);
}

// ---------------------------------------------------------------------------
// AtomicFile durability contract
// ---------------------------------------------------------------------------

TEST_F(CheckpointTest, AtomicFileReplacesWholeFileOrNothing) {
    const std::string path = dir_ + "/target.txt";
    util::atomic_write_file(path, "old contents");

    // An injected ENOSPC on commit must leave the old file byte-identical
    // and no temp residue behind.
    util::IoFaultConfig io;
    io.enospc_rate = 1.0;
    util::IoFaultInjector inj(io);
    {
        util::ScopedIoFaultInjector install(&inj);
        util::AtomicFile file(path);
        file.stream() << "new contents that must never land";
        EXPECT_THROW(file.commit(), std::runtime_error);
    }
    EXPECT_GE(inj.injected_enospc(), 1u);

    std::ifstream in(path, std::ios::binary);
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    EXPECT_EQ(contents, "old contents");
    EXPECT_EQ(snapshot_files(dir_).size(), 0u);  // no stray .nofisckpt
    std::size_t files = 0;
    for (const auto& entry : fs::directory_iterator(dir_)) {
        (void)entry;
        ++files;
    }
    EXPECT_EQ(files, 1u) << "temp file leaked next to " << path;

    // With the injector gone the same replacement succeeds.
    util::atomic_write_file(path, "new contents");
    std::ifstream in2(path, std::ios::binary);
    std::string contents2((std::istreambuf_iterator<char>(in2)),
                          std::istreambuf_iterator<char>());
    EXPECT_EQ(contents2, "new contents");
}

// ---------------------------------------------------------------------------
// State capture primitives
// ---------------------------------------------------------------------------

TEST(CheckpointState, EngineStateRoundTripResumesStream) {
    rng::Engine eng(12345);
    for (int i = 0; i < 17; ++i) (void)eng();

    const rng::Engine::State mid = eng.state();
    std::vector<std::uint64_t> tail;
    for (int i = 0; i < 32; ++i) tail.push_back(eng());

    rng::Engine other(999);  // different seed; state restore overrides it
    other.set_state(mid);
    for (int i = 0; i < 32; ++i) EXPECT_EQ(other(), tail[i]);
}

TEST(CheckpointState, AdamExportImportContinuesBitwise) {
    // Two little parameter matrices trained on a quadratic; tearing the
    // optimizer down mid-run and importing its state must continue exactly.
    auto make_params = [] {
        linalg::Matrix a(2, 2);
        a(0, 0) = 0.5;
        a(0, 1) = -1.25;
        a(1, 0) = 2.0;
        a(1, 1) = 0.125;
        linalg::Matrix b(1, 2);
        b(0, 0) = -0.75;
        b(0, 1) = 1.5;
        return std::vector<autodiff::Var>{autodiff::Var(a, true),
                                          autodiff::Var(b, true)};
    };
    auto step_once = [](nn::Adam& opt, std::vector<autodiff::Var>& params) {
        opt.zero_grad();
        autodiff::Var loss = autodiff::add(
            autodiff::sum(autodiff::square_v(params[0])),
            autodiff::sum(autodiff::square_v(params[1])));
        loss.backward();
        opt.step();
    };

    // Reference: 7 uninterrupted steps.
    auto ref_params = make_params();
    nn::Adam ref(ref_params, 3e-2);
    for (int i = 0; i < 7; ++i) step_once(ref, ref_params);

    // Resumed: 4 steps, export, fresh optimizer over the live params,
    // import, 3 more steps.
    auto params = make_params();
    nn::OptimizerState state;
    {
        nn::Adam opt(params, 3e-2);
        for (int i = 0; i < 4; ++i) step_once(opt, params);
        state = opt.export_state();
    }
    nn::Adam resumed(params, 3e-2);
    resumed.import_state(state);
    for (int i = 0; i < 3; ++i) step_once(resumed, params);

    for (std::size_t p = 0; p < params.size(); ++p) {
        const auto& got = params[p].value();
        const auto& want = ref_params[p].value();
        for (std::size_t i = 0; i < got.flat().size(); ++i)
            EXPECT_EQ(bits(got.flat()[i]), bits(want.flat()[i]))
                << "param " << p << " element " << i;
    }
}

// ---------------------------------------------------------------------------
// Snapshot encoding
// ---------------------------------------------------------------------------

checkpoint::TrainSnapshot sample_snapshot() {
    checkpoint::TrainSnapshot s;
    s.fingerprint = 0xfeedfacecafebeefULL;
    s.next_stage = 3;
    linalg::Matrix w(2, 3);
    for (std::size_t i = 0; i < 6; ++i) w.flat()[i] = 0.25 * (i + 1);
    s.params = {w, linalg::Matrix(1, 2, -0.5)};
    s.scale_caps = {2.0, 1.4};
    s.rng_state = {1, 2, 3, 0xffffffffffffffffULL};
    s.guard_call_index = 4242;
    s.guard_report.counts[0] = 3;
    s.guard_report.retry_attempts = 5;
    s.guard_report.recovered = 2;
    s.guard_report.clamped = 1;
    s.guard_report.has_first = true;
    s.guard_report.first_kind = estimators::FaultKind::kNonFiniteValue;
    s.guard_report.first_message = "injected NaN";
    s.guard_report.first_x = {0.5, -0.5};
    s.guard_report.first_call_index = 17;
    s.train_g_calls = 720;
    s.g_grad_calls = 360;
    s.cached_hits = 9;
    checkpoint::StageRecord rec;
    rec.stage = 1;
    rec.level = 1.2;
    rec.epoch_loss = {2.5, std::numeric_limits<double>::quiet_NaN(), 1.75};
    rec.inside_fraction = 0.875;
    rec.retries = 1;
    rec.retry_reasons = {"non-finite KL loss"};
    rec.skipped_epochs = 2;
    s.stages = {rec};
    s.has_partial = true;
    s.next_epoch = 4;
    s.attempt = 1;
    s.attempt_lr = 3.5e-3;
    s.attempt_clip = 25.0;
    s.stage_lr = 3.1e-3;
    s.opt_state.step_count = 88;
    s.opt_state.slots = {linalg::Matrix(2, 3, 0.01), linalg::Matrix(2, 3, 0.02)};
    s.stage_start_params = {linalg::Matrix(2, 3, 1.0)};
    s.partial = rec;
    s.partial.stage = 2;
    return s;
}

TEST(CheckpointCodec, SnapshotRoundTripsBitExact) {
    const checkpoint::TrainSnapshot s = sample_snapshot();
    const std::string blob = checkpoint::encode_snapshot(s);
    const auto d = checkpoint::decode_snapshot(blob);
    ASSERT_TRUE(d.has_value());

    EXPECT_EQ(d->fingerprint, s.fingerprint);
    EXPECT_EQ(d->next_stage, s.next_stage);
    ASSERT_EQ(d->params.size(), s.params.size());
    for (std::size_t p = 0; p < s.params.size(); ++p) {
        ASSERT_EQ(d->params[p].rows(), s.params[p].rows());
        ASSERT_EQ(d->params[p].cols(), s.params[p].cols());
        for (std::size_t i = 0; i < s.params[p].flat().size(); ++i)
            EXPECT_EQ(bits(d->params[p].flat()[i]),
                      bits(s.params[p].flat()[i]));
    }
    EXPECT_EQ(d->scale_caps, s.scale_caps);
    EXPECT_EQ(d->rng_state, s.rng_state);
    EXPECT_EQ(d->guard_call_index, s.guard_call_index);
    EXPECT_EQ(d->guard_report.counts, s.guard_report.counts);
    EXPECT_EQ(d->guard_report.retry_attempts, s.guard_report.retry_attempts);
    EXPECT_EQ(d->guard_report.has_first, true);
    EXPECT_EQ(d->guard_report.first_kind, s.guard_report.first_kind);
    EXPECT_EQ(d->guard_report.first_message, s.guard_report.first_message);
    EXPECT_EQ(d->guard_report.first_x, s.guard_report.first_x);
    EXPECT_EQ(d->guard_report.first_call_index,
              s.guard_report.first_call_index);
    EXPECT_EQ(d->train_g_calls, s.train_g_calls);
    EXPECT_EQ(d->g_grad_calls, s.g_grad_calls);
    EXPECT_EQ(d->cached_hits, s.cached_hits);

    ASSERT_EQ(d->stages.size(), 1u);
    ASSERT_EQ(d->stages[0].epoch_loss.size(), 3u);
    // The NaN sentinel must survive with its exact bit pattern.
    EXPECT_EQ(bits(d->stages[0].epoch_loss[1]),
              bits(s.stages[0].epoch_loss[1]));
    EXPECT_EQ(d->stages[0].retry_reasons, s.stages[0].retry_reasons);

    EXPECT_TRUE(d->has_partial);
    EXPECT_EQ(d->next_epoch, s.next_epoch);
    EXPECT_EQ(d->attempt, s.attempt);
    EXPECT_EQ(bits(d->attempt_lr), bits(s.attempt_lr));
    EXPECT_EQ(bits(d->attempt_clip), bits(s.attempt_clip));
    EXPECT_EQ(bits(d->stage_lr), bits(s.stage_lr));
    EXPECT_EQ(d->opt_state.step_count, s.opt_state.step_count);
    ASSERT_EQ(d->opt_state.slots.size(), 2u);
    EXPECT_EQ(d->opt_state.slots[1](1, 2), 0.02);
    ASSERT_EQ(d->stage_start_params.size(), 1u);
    EXPECT_EQ(d->partial.stage, 2u);
}

TEST(CheckpointCodec, DecodeRejectsAnyDamage) {
    const std::string blob = checkpoint::encode_snapshot(sample_snapshot());

    // Every single-bit flip must be caught by the checksum.
    for (std::size_t i = 0; i < blob.size(); i += 13) {
        std::string damaged = blob;
        damaged[i] = static_cast<char>(damaged[i] ^ 0x40);
        EXPECT_FALSE(checkpoint::decode_snapshot(damaged).has_value())
            << "bit flip at byte " << i << " went undetected";
    }
    // Every truncation (torn write) must be caught too.
    for (std::size_t len = 0; len < blob.size(); len += 97)
        EXPECT_FALSE(checkpoint::decode_snapshot(blob.substr(0, len)))
            << "truncation to " << len << " bytes went undetected";
    // Trailing garbage is damage, not slack.
    EXPECT_FALSE(checkpoint::decode_snapshot(blob + "x").has_value());
    EXPECT_TRUE(checkpoint::decode_snapshot(blob).has_value());
}

// ---------------------------------------------------------------------------
// CheckpointDir: pruning, fallback, fingerprint safety
// ---------------------------------------------------------------------------

TEST_F(CheckpointTest, DirPrunesToKeepAndLoadsNewest) {
    checkpoint::CheckpointDir ckdir(dir_, 3);
    checkpoint::TrainSnapshot s = sample_snapshot();
    s.has_partial = false;
    for (std::uint64_t stage = 1; stage <= 5; ++stage) {
        s.next_stage = stage;
        ckdir.write(s);
    }
    EXPECT_EQ(ckdir.writes(), 5u);
    EXPECT_EQ(snapshot_files(dir_).size(), 3u);

    const auto latest = ckdir.load_latest(s.fingerprint);
    ASSERT_TRUE(latest.has_value());
    EXPECT_EQ(latest->next_stage, 5u);
}

TEST_F(CheckpointTest, CorruptNewestFallsBackToPreviousValid) {
    checkpoint::CheckpointDir ckdir(dir_, 3);
    checkpoint::TrainSnapshot s = sample_snapshot();
    s.has_partial = false;
    s.next_stage = 7;
    ckdir.write(s);
    s.next_stage = 8;
    ckdir.write(s);

    auto files = snapshot_files(dir_);
    ASSERT_EQ(files.size(), 2u);
    flip_one_bit(files.back(), fs::file_size(files.back()) / 2);

    const auto loaded = ckdir.load_latest(s.fingerprint);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->next_stage, 7u);
}

TEST_F(CheckpointTest, FingerprintMismatchThrowsInsteadOfResuming) {
    checkpoint::CheckpointDir ckdir(dir_, 3);
    checkpoint::TrainSnapshot s = sample_snapshot();
    ckdir.write(s);
    EXPECT_THROW((void)ckdir.load_latest(s.fingerprint + 1),
                 std::runtime_error);
    EXPECT_TRUE(ckdir.load_latest(s.fingerprint).has_value());
}

// ---------------------------------------------------------------------------
// End-to-end kill/resume: bitwise-identical continuation
// ---------------------------------------------------------------------------

TEST_F(CheckpointResumeTest, CheckpointedRunMatchesUncheckpointed) {
    HalfSpace2D problem(2.5);
    rng::Engine eng_a(7);
    const auto plain =
        NofisEstimator(tiny_config(), tiny_levels()).run(problem, eng_a);

    NofisConfig cfg = tiny_config();
    cfg.checkpoint.dir = dir_;
    cfg.checkpoint.every_epochs = 2;
    rng::Engine eng_b(7);
    const auto checkpointed =
        NofisEstimator(cfg, tiny_levels()).run(problem, eng_b);

    expect_same_run(plain, checkpointed);
    EXPECT_FALSE(checkpointed.interrupted);
    EXPECT_GT(snapshot_files(dir_).size(), 0u);
}

TEST_F(CheckpointResumeTest, KillAtStageBoundaryResumesBitwise) {
    HalfSpace2D problem(2.5);
    rng::Engine eng_ref(7);
    const auto reference =
        NofisEstimator(tiny_config(), tiny_levels()).run(problem, eng_ref);

    // Crash immediately after the second stage-boundary snapshot.
    NofisConfig cfg = tiny_config();
    cfg.checkpoint.dir = dir_;
    cfg.checkpoint.crash_after_snapshots = 2;
    {
        rng::Engine eng(7);
        EXPECT_THROW(NofisEstimator(cfg, tiny_levels()).run(problem, eng),
                     checkpoint::SimulatedCrash);
    }
    EXPECT_EQ(snapshot_files(dir_).size(), 2u);

    cfg.checkpoint.crash_after_snapshots = 0;
    cfg.checkpoint.resume = true;
    rng::Engine eng2(99);  // seed is irrelevant: the snapshot carries the state
    const auto resumed = NofisEstimator(cfg, tiny_levels()).run(problem, eng2);
    EXPECT_FALSE(resumed.interrupted);
    expect_same_run(reference, resumed);
}

TEST_F(CheckpointResumeTest, KillMidStageResumesBitwiseAcrossThreadCounts) {
    PoolGuard pool_guard;
    HalfSpace2D problem(2.5);

    NofisConfig ref_cfg = tiny_config();
    ref_cfg.threads = 1;
    rng::Engine eng_ref(7);
    const auto reference =
        NofisEstimator(ref_cfg, tiny_levels()).run(problem, eng_ref);

    // Epoch snapshots at epochs 2 and 4 plus one per stage boundary; the
    // fifth write of the run is stage 2, epoch 4 — a mid-attempt kill with
    // live Adam moments. Crash at --threads 8.
    NofisConfig cfg = tiny_config();
    cfg.checkpoint.dir = dir_;
    cfg.checkpoint.every_epochs = 2;
    cfg.checkpoint.crash_after_snapshots = 5;
    cfg.threads = 8;
    {
        rng::Engine eng(7);
        EXPECT_THROW(NofisEstimator(cfg, tiny_levels()).run(problem, eng),
                     checkpoint::SimulatedCrash);
    }

    // The latest snapshot really is mid-stage.
    {
        checkpoint::CheckpointDir ckdir(dir_, 3);
        // Fingerprint is whatever the run used; peek with the raw decoder.
        auto files = snapshot_files(dir_);
        ASSERT_FALSE(files.empty());
        std::ifstream in(files.back(), std::ios::binary);
        std::string blob((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
        const auto peek = checkpoint::decode_snapshot(blob);
        ASSERT_TRUE(peek.has_value());
        EXPECT_TRUE(peek->has_partial);
        EXPECT_EQ(peek->next_stage, 2u);
        EXPECT_EQ(peek->next_epoch, 4u);
    }

    // Resume at --threads 1: thread count is outside the fingerprint and
    // outside the math.
    cfg.checkpoint.crash_after_snapshots = 0;
    cfg.checkpoint.resume = true;
    cfg.threads = 1;
    rng::Engine eng2(31337);
    const auto resumed = NofisEstimator(cfg, tiny_levels()).run(problem, eng2);
    expect_same_run(reference, resumed);
}

TEST_F(CheckpointResumeTest, CorruptLatestSnapshotResumesFromPrevious) {
    HalfSpace2D problem(2.5);
    rng::Engine eng_ref(7);
    const auto reference =
        NofisEstimator(tiny_config(), tiny_levels()).run(problem, eng_ref);

    NofisConfig cfg = tiny_config();
    cfg.checkpoint.dir = dir_;
    cfg.checkpoint.crash_after_snapshots = 2;
    {
        rng::Engine eng(7);
        EXPECT_THROW(NofisEstimator(cfg, tiny_levels()).run(problem, eng),
                     checkpoint::SimulatedCrash);
    }

    // Simulate a torn final write: damage the newest snapshot. Resume must
    // fall back to the stage-1 snapshot and still land on the same bits.
    auto files = snapshot_files(dir_);
    ASSERT_EQ(files.size(), 2u);
    flip_one_bit(files.back(), fs::file_size(files.back()) - 3);

    cfg.checkpoint.crash_after_snapshots = 0;
    cfg.checkpoint.resume = true;
    rng::Engine eng2(7);
    const auto resumed = NofisEstimator(cfg, tiny_levels()).run(problem, eng2);
    expect_same_run(reference, resumed);
}

TEST_F(CheckpointResumeTest, ChangedConfigRefusesToResume) {
    HalfSpace2D problem(2.5);
    NofisConfig cfg = tiny_config();
    cfg.checkpoint.dir = dir_;
    {
        rng::Engine eng(7);
        (void)NofisEstimator(cfg, tiny_levels()).run(problem, eng);
    }
    cfg.checkpoint.resume = true;
    cfg.tau = 30.0;  // different run identity: resuming would diverge
    rng::Engine eng2(7);
    EXPECT_THROW(NofisEstimator(cfg, tiny_levels()).run(problem, eng2),
                 std::runtime_error);
}

TEST_F(CheckpointResumeTest, StopRequestInterruptsThenResumesBitwise) {
    StopGuard stop_guard;
    HalfSpace2D problem(2.5);
    rng::Engine eng_ref(7);
    const auto reference =
        NofisEstimator(tiny_config(), tiny_levels()).run(problem, eng_ref);

    NofisConfig cfg = tiny_config();
    cfg.checkpoint.dir = dir_;
    checkpoint::request_stop();
    rng::Engine eng(7);
    const auto stopped = NofisEstimator(cfg, tiny_levels()).run(problem, eng);
    EXPECT_TRUE(stopped.interrupted);
    EXPECT_TRUE(stopped.estimate.failed);
    EXPECT_EQ(stopped.stages.size(), 1u);  // finished the in-flight stage
    EXPECT_GE(snapshot_files(dir_).size(), 1u);

    checkpoint::reset_stop_request();
    cfg.checkpoint.resume = true;
    rng::Engine eng2(7);
    const auto resumed = NofisEstimator(cfg, tiny_levels()).run(problem, eng2);
    EXPECT_FALSE(resumed.interrupted);
    expect_same_run(reference, resumed);
}

// ---------------------------------------------------------------------------
// Resume × faults × cache: the full Guarded(Cached(FaultInjector)) stack
// ---------------------------------------------------------------------------

TEST_F(CheckpointResumeTest, FaultyCachedRunSurvivesKillWithHonestLedgers) {
    HalfSpace2D inner(2.5);
    testcases::FaultInjectorConfig fault_cfg;
    fault_cfg.nan_rate = 0.01;
    fault_cfg.throw_rate = 0.01;
    fault_cfg.seed = 0xabcdULL;

    const std::string ckpt_dir = dir_ + "/ckpt";
    const std::string cache_ref = dir_ + "/cache_ref";
    const std::string cache_kill = dir_ + "/cache_kill";

    NofisConfig cfg = tiny_config();
    cfg.cache_key = "ckptfault#d2";

    // Reference: uninterrupted faulted run against its own cold disk cache.
    NofisEstimator::RunResult reference;
    {
        testcases::FaultInjector faulty(inner, fault_cfg);
        evalcache::CacheConfig cc;
        cc.dir = cache_ref;
        cfg.cache = std::make_shared<evalcache::EvalCache>(cc);
        rng::Engine eng(7);
        reference = NofisEstimator(cfg, tiny_levels()).run(faulty, eng);
        cfg.cache.reset();
    }
    ASSERT_FALSE(reference.estimate.failed);
    // The rates are seeded, so this run deterministically saw faults; a
    // fault-free run would make the ledger assertions below vacuous.
    EXPECT_GT(reference.health.faults.total_faults(), 0u);
    EXPECT_GT(reference.health.g_retry_calls, 0u);

    // Kill: same faults, cold cache of its own, crash after the second
    // snapshot.
    cfg.checkpoint.dir = ckpt_dir;
    cfg.checkpoint.crash_after_snapshots = 2;
    {
        testcases::FaultInjector faulty(inner, fault_cfg);
        evalcache::CacheConfig cc;
        cc.dir = cache_kill;
        cfg.cache = std::make_shared<evalcache::EvalCache>(cc);
        rng::Engine eng(7);
        EXPECT_THROW(NofisEstimator(cfg, tiny_levels()).run(faulty, eng),
                     checkpoint::SimulatedCrash);
        cfg.cache.reset();  // "process death": drop the in-memory tier
    }

    // Resume: a fresh process re-opens the same disk cache and the same
    // checkpoint dir. A fresh FaultInjector replays the same faults because
    // the guard's call index was restored from the snapshot.
    cfg.checkpoint.crash_after_snapshots = 0;
    cfg.checkpoint.resume = true;
    NofisEstimator::RunResult resumed;
    {
        testcases::FaultInjector faulty(inner, fault_cfg);
        evalcache::CacheConfig cc;
        cc.dir = cache_kill;
        cfg.cache = std::make_shared<evalcache::EvalCache>(cc);
        rng::Engine eng(50);
        resumed = NofisEstimator(cfg, tiny_levels()).run(faulty, eng);
        cfg.cache.reset();
    }

    // Estimate, fault ledger, rollback telemetry, and the fresh/cached
    // g-call split must all match the uninterrupted run exactly.
    expect_same_run(reference, resumed);
    EXPECT_LE(resumed.estimate.cached_calls, resumed.estimate.calls);
    const std::size_t fresh =
        resumed.estimate.calls - resumed.estimate.cached_calls;
    EXPECT_EQ(fresh + resumed.estimate.cached_calls, resumed.estimate.calls);
    EXPECT_EQ(resumed.estimate.cached_calls, reference.estimate.cached_calls);
}

TEST_F(CheckpointResumeTest, InjectedEnospcOnCacheLogNeverChangesEstimate) {
    HalfSpace2D inner(2.5);
    rng::Engine eng_ref(7);
    const auto reference =
        NofisEstimator(tiny_config(), tiny_levels()).run(inner, eng_ref);

    // Every durable cache append fails with ENOSPC; the run must shrug —
    // identical bits, only the durability counter moves.
    testcases::FaultInjectorConfig fault_cfg;
    fault_cfg.io_enospc_rate = 1.0;
    fault_cfg.seed = 0x10ULL;
    testcases::FaultInjector faulty(inner, fault_cfg);

    NofisConfig cfg = tiny_config();
    evalcache::CacheConfig cc;
    cc.dir = dir_ + "/cache";
    cfg.cache = std::make_shared<evalcache::EvalCache>(cc);
    cfg.cache_key = "enospc#d2";
    rng::Engine eng(7);
    const auto degraded = NofisEstimator(cfg, tiny_levels()).run(faulty, eng);

    EXPECT_EQ(bits(degraded.estimate.p_hat), bits(reference.estimate.p_hat));
    EXPECT_EQ(degraded.estimate.calls, reference.estimate.calls);
    EXPECT_GT(cfg.cache->stats().disk_errors, 0u);
    ASSERT_NE(faulty.io_injector(), nullptr);
    EXPECT_GT(faulty.io_injector()->injected_enospc(), 0u);
}

}  // namespace
