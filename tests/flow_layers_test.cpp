// Tests for the flow-layer extensions: NICE additive couplings, rational-
// quadratic spline couplings, ActNorm, and the polymorphic CouplingStack
// variants built from them.

#include <gtest/gtest.h>

#include <cmath>

#include "autodiff/gradcheck.hpp"
#include "flow/actnorm.hpp"
#include "flow/additive_coupling.hpp"
#include "flow/coupling_stack.hpp"
#include "flow/rqs_coupling.hpp"
#include "linalg/lu.hpp"
#include "rng/normal.hpp"

namespace {

using namespace nofis;
using autodiff::Var;
using flow::ActNorm;
using flow::AdditiveCoupling;
using flow::CouplingKind;
using flow::CouplingStack;
using flow::RqsCoupling;
using flow::StackConfig;
using linalg::Matrix;
using rng::Engine;

AdditiveCoupling randomized_additive(std::size_t dim, bool first,
                                     std::uint64_t seed) {
    Engine eng(seed);
    AdditiveCoupling layer(dim, first, {16}, eng);
    Engine weights(seed + 1);
    for (auto& p : layer.params())
        for (double& v : p.mutable_value().flat())
            v = 0.3 * rng::standard_normal(weights);
    return layer;
}

RqsCoupling randomized_rqs(std::size_t dim, bool first, std::uint64_t seed,
                           std::size_t bins = 8, double tail = 3.0) {
    Engine eng(seed);
    RqsCoupling layer(dim, first, {16}, eng, bins, tail);
    Engine weights(seed + 1);
    for (auto& p : layer.params())
        for (double& v : p.mutable_value().flat())
            v = 0.3 * rng::standard_normal(weights);
    return layer;
}

// ---------------------------------------------------------------------------
// AdditiveCoupling
// ---------------------------------------------------------------------------

TEST(AdditiveCoupling, FreshLayerIsIdentity) {
    Engine eng(1);
    AdditiveCoupling layer(4, true, {8}, eng);
    const Matrix x = rng::standard_normal_matrix(eng, 6, 4);
    std::vector<double> ld(6, 0.0);
    EXPECT_LT(linalg::max_abs_diff(layer.forward_values(x, ld), x), 1e-14);
}

class AdditiveInvertibility
    : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AdditiveInvertibility, InverseUndoesForward) {
    const std::size_t dim = GetParam();
    const auto layer = randomized_additive(dim, dim % 2 == 0, 40 + dim);
    Engine eng(2);
    const Matrix x = rng::standard_normal_matrix(eng, 16, dim);
    std::vector<double> ld(16, 0.0);
    const Matrix y = layer.forward_values(x, ld);
    std::vector<double> ld2(16, 0.0);
    EXPECT_LT(linalg::max_abs_diff(layer.inverse_values(y, ld2), x), 1e-11);
}

INSTANTIATE_TEST_SUITE_P(Dims, AdditiveInvertibility,
                         ::testing::Values(2, 3, 5, 9));

TEST(AdditiveCoupling, IsVolumePreserving) {
    const auto layer = randomized_additive(3, true, 50);
    Engine eng(3);
    const Matrix x = rng::standard_normal_matrix(eng, 8, 3);
    std::vector<double> ld(8, 0.0);
    layer.forward_values(x, ld);
    for (double v : ld) EXPECT_DOUBLE_EQ(v, 0.0);
    const auto fwd = layer.forward(Var(x));
    EXPECT_DOUBLE_EQ(fwd.log_det.value().max_abs(), 0.0);
}

TEST(AdditiveCoupling, GraphMatchesValuesAndGradChecks) {
    const auto layer = randomized_additive(4, false, 51);
    Engine eng(4);
    const Matrix x = rng::standard_normal_matrix(eng, 5, 4);
    std::vector<double> ld(5, 0.0);
    const Matrix y = layer.forward_values(x, ld);
    EXPECT_LT(linalg::max_abs_diff(layer.forward(Var(x)).y.value(), y),
              1e-13);
    const auto res = autodiff::grad_check(
        [&layer](const Var& v) {
            return autodiff::sum(autodiff::square_v(layer.forward(v).y));
        },
        x, 1e-5, 1e-5);
    EXPECT_TRUE(res.passed) << res.max_rel_error;
}

// ---------------------------------------------------------------------------
// RqsCoupling
// ---------------------------------------------------------------------------

TEST(RqsCoupling, FreshLayerIsIdentityWithZeroLogDet) {
    // Zero-initialised output layer + the derivative offset → uniform bins,
    // unit knot slopes: the spline must be the exact identity at init.
    Engine eng(20);
    RqsCoupling layer(4, true, {8}, eng);
    const Matrix x = rng::standard_normal_matrix(eng, 6, 4);
    std::vector<double> ld(6, 0.0);
    EXPECT_LT(linalg::max_abs_diff(layer.forward_values(x, ld), x), 1e-12);
    for (double v : ld) EXPECT_NEAR(v, 0.0, 1e-12);
}

class RqsInvertibility : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RqsInvertibility, InverseUndoesForward) {
    const std::size_t dim = GetParam();
    const auto layer = randomized_rqs(dim, dim % 2 == 0, 60 + dim);
    Engine eng(21);
    // Scale up so a meaningful fraction of coordinates lands in the linear
    // tails as well as the spline interior.
    Matrix x = rng::standard_normal_matrix(eng, 32, dim);
    for (double& v : x.flat()) v *= 2.0;
    std::vector<double> ld(32, 0.0);
    const Matrix y = layer.forward_values(x, ld);
    std::vector<double> ld2(32, 0.0);
    const Matrix x2 = layer.inverse_values(y, ld2);
    EXPECT_LT(linalg::max_abs_diff(x2, x), 1e-12);
    // inverse_values reports the forward log-det at the reconstructed input.
    for (std::size_t r = 0; r < 32; ++r) EXPECT_NEAR(ld2[r], ld[r], 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Dims, RqsInvertibility,
                         ::testing::Values(2, 3, 5, 9));

TEST(RqsCoupling, TailsAreIdentity) {
    // Outside [-tail_bound, tail_bound] the transform is the identity with
    // zero log-det contribution, so extreme samples pass through untouched.
    const auto layer = randomized_rqs(4, true, 70, 8, 2.0);
    Matrix x(2, 4);
    for (std::size_t c = 0; c < 4; ++c) {
        x(0, c) = 5.0 + static_cast<double>(c);
        x(1, c) = -6.0 - static_cast<double>(c);
    }
    std::vector<double> ld(2, 0.0);
    const Matrix y = layer.forward_values(x, ld);
    for (std::size_t r = 0; r < 2; ++r) {
        for (std::size_t c = 0; c < 4; ++c) EXPECT_EQ(y(r, c), x(r, c));
        EXPECT_EQ(ld[r], 0.0);
    }
}

TEST(RqsCoupling, LogDetMatchesNumericalJacobian) {
    const std::size_t dim = 5;
    const auto layer = randomized_rqs(dim, false, 71);
    Engine eng(22);
    const Matrix x = rng::standard_normal_matrix(eng, 1, dim);
    std::vector<double> ld(1, 0.0);
    layer.forward_values(x, ld);

    const double eps = 1e-6;
    Matrix jac(dim, dim);
    for (std::size_t c = 0; c < dim; ++c) {
        Matrix xp = x, xm = x;
        xp(0, c) += eps;
        xm(0, c) -= eps;
        std::vector<double> tmp(1, 0.0);
        const Matrix yp = layer.forward_values(xp, tmp);
        tmp[0] = 0.0;
        const Matrix ym = layer.forward_values(xm, tmp);
        for (std::size_t r = 0; r < dim; ++r)
            jac(r, c) = (yp(0, r) - ym(0, r)) / (2.0 * eps);
    }
    const linalg::LuDecomposition lu(jac);
    EXPECT_NEAR(ld[0], lu.log_abs_determinant(), 1e-6);
}

TEST(RqsCoupling, GraphMatchesValuesAndGradChecks) {
    const auto layer = randomized_rqs(4, false, 72);
    Engine eng(23);
    const Matrix x = rng::standard_normal_matrix(eng, 5, 4);
    std::vector<double> ld(5, 0.0);
    const Matrix y = layer.forward_values(x, ld);
    // Tape and value paths share the dispatched spline kernels, so they
    // agree bitwise, not just to tolerance (DESIGN.md §13).
    const auto fwd = layer.forward(Var(x));
    EXPECT_EQ(linalg::max_abs_diff(fwd.y.value(), y), 0.0);
    for (std::size_t r = 0; r < 5; ++r)
        EXPECT_EQ(fwd.log_det.value()(r, 0), ld[r]);
    const auto res = autodiff::grad_check(
        [&layer](const Var& v) {
            auto f = layer.forward(v);
            return autodiff::add(autodiff::sum(autodiff::square_v(f.y)),
                                 autodiff::sum(f.log_det));
        },
        x, 1e-5, 1e-5);
    EXPECT_TRUE(res.passed) << res.max_rel_error;
}

// ---------------------------------------------------------------------------
// ActNorm
// ---------------------------------------------------------------------------

TEST(ActNorm, FreshLayerIsIdentityWithZeroLogDet) {
    ActNorm layer(3);
    Engine eng(5);
    const Matrix x = rng::standard_normal_matrix(eng, 4, 3);
    std::vector<double> ld(4, 0.0);
    EXPECT_LT(linalg::max_abs_diff(layer.forward_values(x, ld), x), 1e-14);
    for (double v : ld) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(ActNorm, LogDetEqualsSumOfLogScales) {
    ActNorm layer(2);
    layer.params()[0].mutable_value()(0, 0) = 0.5;
    layer.params()[0].mutable_value()(0, 1) = -0.2;
    layer.params()[1].mutable_value()(0, 0) = 1.0;
    Engine eng(6);
    const Matrix x = rng::standard_normal_matrix(eng, 3, 2);
    std::vector<double> ld(3, 0.0);
    const Matrix y = layer.forward_values(x, ld);
    for (double v : ld) EXPECT_NEAR(v, 0.3, 1e-14);
    EXPECT_NEAR(y(0, 0), x(0, 0) * std::exp(0.5) + 1.0, 1e-14);
    std::vector<double> ld2(3, 0.0);
    EXPECT_LT(linalg::max_abs_diff(layer.inverse_values(y, ld2), x), 1e-12);
}

TEST(ActNorm, GradCheckThroughParameters) {
    // Gradcheck w.r.t. the input; parameter gradients follow from the same
    // broadcast machinery (covered by optimizer-step test below).
    ActNorm layer(3);
    layer.params()[0].mutable_value()(0, 1) = 0.4;
    Engine eng(7);
    const Matrix x0 = rng::standard_normal_matrix(eng, 4, 3);
    const auto res = autodiff::grad_check(
        [&layer](const Var& v) {
            auto fwd = layer.forward(v);
            return autodiff::add(autodiff::sum(autodiff::square_v(fwd.y)),
                                 autodiff::sum(fwd.log_det));
        },
        x0, 1e-5, 1e-5);
    EXPECT_TRUE(res.passed) << res.max_rel_error;
}

TEST(ActNorm, ParametersReceiveGradients) {
    ActNorm layer(2);
    Engine eng(8);
    const Matrix x = rng::standard_normal_matrix(eng, 16, 2);
    auto fwd = layer.forward(Var(x));
    autodiff::sum(autodiff::square_v(fwd.y)).backward();
    EXPECT_GT(layer.params()[0].grad().max_abs(), 0.0);  // log-scale
    EXPECT_GT(layer.params()[1].grad().max_abs(), 0.0);  // shift
}

// ---------------------------------------------------------------------------
// Stack variants
// ---------------------------------------------------------------------------

StackConfig variant_config(CouplingKind kind, bool actnorm) {
    StackConfig cfg;
    cfg.dim = 3;
    cfg.num_blocks = 2;
    cfg.layers_per_block = 4;
    cfg.hidden = {12};
    cfg.coupling = kind;
    cfg.use_actnorm = actnorm;
    return cfg;
}

class StackVariant
    : public ::testing::TestWithParam<std::tuple<CouplingKind, bool>> {};

TEST_P(StackVariant, RoundTripAndDensityConsistency) {
    const auto [kind, actnorm] = GetParam();
    Engine eng(9);
    CouplingStack stack(variant_config(kind, actnorm), eng);
    Engine weights(10);
    for (auto& p : stack.params())
        for (double& v : p.mutable_value().flat())
            v = 0.15 * rng::standard_normal(weights);

    Engine eng2(11);
    const auto s = stack.sample(eng2, 12, 2);
    // Inverse round trip.
    const Matrix z0 = stack.inverse(s.z, 2);
    std::vector<double> ld(12, 0.0);
    const Matrix z_again = stack.transport_range(z0, 0, 2, ld);
    EXPECT_LT(linalg::max_abs_diff(z_again, s.z), 1e-9);
    // log_prob matches the sampling-path density.
    const auto lp = stack.log_prob(s.z, 2);
    for (std::size_t r = 0; r < 12; ++r)
        EXPECT_NEAR(lp[r], s.log_q[r], 1e-9);
}

TEST_P(StackVariant, FreezeCoversAllBlockLayers) {
    const auto [kind, actnorm] = GetParam();
    Engine eng(12);
    CouplingStack stack(variant_config(kind, actnorm), eng);
    stack.freeze_blocks_before(1);
    for (const auto& p : stack.block_params(0))
        EXPECT_FALSE(p.requires_grad());
    for (const auto& p : stack.block_params(1))
        EXPECT_TRUE(p.requires_grad());
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, StackVariant,
    ::testing::Combine(::testing::Values(CouplingKind::kAffine,
                                         CouplingKind::kAdditive,
                                         CouplingKind::kRqs),
                       ::testing::Bool()));

TEST(StackVariant, AdditiveStackHasUniformDensityAlongPath) {
    // A purely additive stack is volume preserving: log q(z) equals the
    // base log-density of the pre-image for every sample.
    Engine eng(13);
    CouplingStack stack(variant_config(CouplingKind::kAdditive, false), eng);
    Engine weights(14);
    for (auto& p : stack.params())
        for (double& v : p.mutable_value().flat())
            v = 0.2 * rng::standard_normal(weights);
    Engine eng2(15);
    const Matrix z0 = rng::standard_normal_matrix(eng2, 10, 3);
    const auto s = stack.transport(z0, 2);
    for (std::size_t r = 0; r < 10; ++r)
        EXPECT_NEAR(s.log_q[r],
                    rng::standard_normal_log_pdf(z0.row_span(r)), 1e-12);
}

}  // namespace
