// Tests for the flow-layer extensions: NICE additive couplings, ActNorm,
// and the polymorphic CouplingStack variants built from them.

#include <gtest/gtest.h>

#include <cmath>

#include "autodiff/gradcheck.hpp"
#include "flow/actnorm.hpp"
#include "flow/additive_coupling.hpp"
#include "flow/coupling_stack.hpp"
#include "linalg/lu.hpp"
#include "rng/normal.hpp"

namespace {

using namespace nofis;
using autodiff::Var;
using flow::ActNorm;
using flow::AdditiveCoupling;
using flow::CouplingKind;
using flow::CouplingStack;
using flow::StackConfig;
using linalg::Matrix;
using rng::Engine;

AdditiveCoupling randomized_additive(std::size_t dim, bool first,
                                     std::uint64_t seed) {
    Engine eng(seed);
    AdditiveCoupling layer(dim, first, {16}, eng);
    Engine weights(seed + 1);
    for (auto& p : layer.params())
        for (double& v : p.mutable_value().flat())
            v = 0.3 * rng::standard_normal(weights);
    return layer;
}

// ---------------------------------------------------------------------------
// AdditiveCoupling
// ---------------------------------------------------------------------------

TEST(AdditiveCoupling, FreshLayerIsIdentity) {
    Engine eng(1);
    AdditiveCoupling layer(4, true, {8}, eng);
    const Matrix x = rng::standard_normal_matrix(eng, 6, 4);
    std::vector<double> ld(6, 0.0);
    EXPECT_LT(linalg::max_abs_diff(layer.forward_values(x, ld), x), 1e-14);
}

class AdditiveInvertibility
    : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AdditiveInvertibility, InverseUndoesForward) {
    const std::size_t dim = GetParam();
    const auto layer = randomized_additive(dim, dim % 2 == 0, 40 + dim);
    Engine eng(2);
    const Matrix x = rng::standard_normal_matrix(eng, 16, dim);
    std::vector<double> ld(16, 0.0);
    const Matrix y = layer.forward_values(x, ld);
    std::vector<double> ld2(16, 0.0);
    EXPECT_LT(linalg::max_abs_diff(layer.inverse_values(y, ld2), x), 1e-11);
}

INSTANTIATE_TEST_SUITE_P(Dims, AdditiveInvertibility,
                         ::testing::Values(2, 3, 5, 9));

TEST(AdditiveCoupling, IsVolumePreserving) {
    const auto layer = randomized_additive(3, true, 50);
    Engine eng(3);
    const Matrix x = rng::standard_normal_matrix(eng, 8, 3);
    std::vector<double> ld(8, 0.0);
    layer.forward_values(x, ld);
    for (double v : ld) EXPECT_DOUBLE_EQ(v, 0.0);
    const auto fwd = layer.forward(Var(x));
    EXPECT_DOUBLE_EQ(fwd.log_det.value().max_abs(), 0.0);
}

TEST(AdditiveCoupling, GraphMatchesValuesAndGradChecks) {
    const auto layer = randomized_additive(4, false, 51);
    Engine eng(4);
    const Matrix x = rng::standard_normal_matrix(eng, 5, 4);
    std::vector<double> ld(5, 0.0);
    const Matrix y = layer.forward_values(x, ld);
    EXPECT_LT(linalg::max_abs_diff(layer.forward(Var(x)).y.value(), y),
              1e-13);
    const auto res = autodiff::grad_check(
        [&layer](const Var& v) {
            return autodiff::sum(autodiff::square_v(layer.forward(v).y));
        },
        x, 1e-5, 1e-5);
    EXPECT_TRUE(res.passed) << res.max_rel_error;
}

// ---------------------------------------------------------------------------
// ActNorm
// ---------------------------------------------------------------------------

TEST(ActNorm, FreshLayerIsIdentityWithZeroLogDet) {
    ActNorm layer(3);
    Engine eng(5);
    const Matrix x = rng::standard_normal_matrix(eng, 4, 3);
    std::vector<double> ld(4, 0.0);
    EXPECT_LT(linalg::max_abs_diff(layer.forward_values(x, ld), x), 1e-14);
    for (double v : ld) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(ActNorm, LogDetEqualsSumOfLogScales) {
    ActNorm layer(2);
    layer.params()[0].mutable_value()(0, 0) = 0.5;
    layer.params()[0].mutable_value()(0, 1) = -0.2;
    layer.params()[1].mutable_value()(0, 0) = 1.0;
    Engine eng(6);
    const Matrix x = rng::standard_normal_matrix(eng, 3, 2);
    std::vector<double> ld(3, 0.0);
    const Matrix y = layer.forward_values(x, ld);
    for (double v : ld) EXPECT_NEAR(v, 0.3, 1e-14);
    EXPECT_NEAR(y(0, 0), x(0, 0) * std::exp(0.5) + 1.0, 1e-14);
    std::vector<double> ld2(3, 0.0);
    EXPECT_LT(linalg::max_abs_diff(layer.inverse_values(y, ld2), x), 1e-12);
}

TEST(ActNorm, GradCheckThroughParameters) {
    // Gradcheck w.r.t. the input; parameter gradients follow from the same
    // broadcast machinery (covered by optimizer-step test below).
    ActNorm layer(3);
    layer.params()[0].mutable_value()(0, 1) = 0.4;
    Engine eng(7);
    const Matrix x0 = rng::standard_normal_matrix(eng, 4, 3);
    const auto res = autodiff::grad_check(
        [&layer](const Var& v) {
            auto fwd = layer.forward(v);
            return autodiff::add(autodiff::sum(autodiff::square_v(fwd.y)),
                                 autodiff::sum(fwd.log_det));
        },
        x0, 1e-5, 1e-5);
    EXPECT_TRUE(res.passed) << res.max_rel_error;
}

TEST(ActNorm, ParametersReceiveGradients) {
    ActNorm layer(2);
    Engine eng(8);
    const Matrix x = rng::standard_normal_matrix(eng, 16, 2);
    auto fwd = layer.forward(Var(x));
    autodiff::sum(autodiff::square_v(fwd.y)).backward();
    EXPECT_GT(layer.params()[0].grad().max_abs(), 0.0);  // log-scale
    EXPECT_GT(layer.params()[1].grad().max_abs(), 0.0);  // shift
}

// ---------------------------------------------------------------------------
// Stack variants
// ---------------------------------------------------------------------------

StackConfig variant_config(CouplingKind kind, bool actnorm) {
    StackConfig cfg;
    cfg.dim = 3;
    cfg.num_blocks = 2;
    cfg.layers_per_block = 4;
    cfg.hidden = {12};
    cfg.coupling = kind;
    cfg.use_actnorm = actnorm;
    return cfg;
}

class StackVariant
    : public ::testing::TestWithParam<std::tuple<CouplingKind, bool>> {};

TEST_P(StackVariant, RoundTripAndDensityConsistency) {
    const auto [kind, actnorm] = GetParam();
    Engine eng(9);
    CouplingStack stack(variant_config(kind, actnorm), eng);
    Engine weights(10);
    for (auto& p : stack.params())
        for (double& v : p.mutable_value().flat())
            v = 0.15 * rng::standard_normal(weights);

    Engine eng2(11);
    const auto s = stack.sample(eng2, 12, 2);
    // Inverse round trip.
    const Matrix z0 = stack.inverse(s.z, 2);
    std::vector<double> ld(12, 0.0);
    const Matrix z_again = stack.transport_range(z0, 0, 2, ld);
    EXPECT_LT(linalg::max_abs_diff(z_again, s.z), 1e-9);
    // log_prob matches the sampling-path density.
    const auto lp = stack.log_prob(s.z, 2);
    for (std::size_t r = 0; r < 12; ++r)
        EXPECT_NEAR(lp[r], s.log_q[r], 1e-9);
}

TEST_P(StackVariant, FreezeCoversAllBlockLayers) {
    const auto [kind, actnorm] = GetParam();
    Engine eng(12);
    CouplingStack stack(variant_config(kind, actnorm), eng);
    stack.freeze_blocks_before(1);
    for (const auto& p : stack.block_params(0))
        EXPECT_FALSE(p.requires_grad());
    for (const auto& p : stack.block_params(1))
        EXPECT_TRUE(p.requires_grad());
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, StackVariant,
    ::testing::Combine(::testing::Values(CouplingKind::kAffine,
                                         CouplingKind::kAdditive),
                       ::testing::Bool()));

TEST(StackVariant, AdditiveStackHasUniformDensityAlongPath) {
    // A purely additive stack is volume preserving: log q(z) equals the
    // base log-density of the pre-image for every sample.
    Engine eng(13);
    CouplingStack stack(variant_config(CouplingKind::kAdditive, false), eng);
    Engine weights(14);
    for (auto& p : stack.params())
        for (double& v : p.mutable_value().flat())
            v = 0.2 * rng::standard_normal(weights);
    Engine eng2(15);
    const Matrix z0 = rng::standard_normal_matrix(eng2, 10, 3);
    const auto s = stack.transport(z0, 2);
    for (std::size_t r = 0; r < 10; ++r)
        EXPECT_NEAR(s.log_q[r],
                    rng::standard_normal_log_pdf(z0.row_span(r)), 1e-12);
}

}  // namespace
