#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <set>

#include "rng/engine.hpp"
#include "rng/normal.hpp"

namespace {

using nofis::rng::Engine;

TEST(Engine, DeterministicUnderSeed) {
    Engine a(42);
    Engine b(42);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Engine, DifferentSeedsDiverge) {
    Engine a(1);
    Engine b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a() == b()) ++same;
    EXPECT_EQ(same, 0);
}

TEST(Engine, UniformInRange) {
    Engine eng(3);
    for (int i = 0; i < 10000; ++i) {
        const double u = eng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
    for (int i = 0; i < 1000; ++i) {
        const double u = eng.uniform(-2.0, 5.0);
        EXPECT_GE(u, -2.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Engine, UniformMomentsApproximatelyCorrect) {
    Engine eng(4);
    double sum = 0.0;
    double sum2 = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double u = eng.uniform();
        sum += u;
        sum2 += u * u;
    }
    EXPECT_NEAR(sum / n, 0.5, 5e-3);
    EXPECT_NEAR(sum2 / n - 0.25, 1.0 / 12.0, 5e-3);
}

TEST(Engine, UniformIndexBounds) {
    Engine eng(5);
    std::vector<int> counts(7, 0);
    for (int i = 0; i < 70000; ++i) {
        const auto k = eng.uniform_index(7);
        ASSERT_LT(k, 7u);
        ++counts[k];
    }
    for (int c : counts) EXPECT_NEAR(c, 10000, 500);
}

TEST(Engine, SplitProducesDecorrelatedStream) {
    Engine parent(77);
    Engine child = parent.split();
    // Child stream should not reproduce the parent's outputs.
    Engine parent_copy(77);
    (void)parent_copy.split();
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (parent() == child()) ++same;
    EXPECT_LE(same, 1);
}

TEST(Engine, SplitIsReproducible) {
    Engine a(99);
    Engine b(99);
    Engine ca = a.split();
    Engine cb = b.split();
    for (int i = 0; i < 32; ++i) EXPECT_EQ(ca(), cb());
}

TEST(Engine, SubstreamIsAPureFunctionOfSeedAndId) {
    Engine a = nofis::rng::substream(1234, 7);
    Engine b = nofis::rng::substream(1234, 7);
    for (int i = 0; i < 64; ++i) EXPECT_EQ(a(), b());
}

TEST(Engine, SubstreamCollisionAndIndependenceSmoke) {
    // First outputs of many (seed, id) pairs must all be distinct — a
    // collision here would mean two latent chains walking in lock-step —
    // and neighbouring ids must not produce correlated streams.
    std::set<std::uint64_t> first;
    for (std::uint64_t seed : {1ULL, 2ULL, 0xdeadbeefULL})
        for (std::uint64_t id = 0; id < 512; ++id)
            first.insert(nofis::rng::substream(seed, id)());
    EXPECT_EQ(first.size(), 3u * 512u);

    Engine s0 = nofis::rng::substream(42, 0);
    Engine s1 = nofis::rng::substream(42, 1);
    int same = 0;
    for (int i = 0; i < 256; ++i)
        if (s0() == s1()) ++same;
    EXPECT_LE(same, 1);
}

TEST(Engine, SubstreamDiffersFromDirectSeeding) {
    // substream(s, 0) must not alias Engine(s) itself — the master seed is
    // re-mixed first, so the caller's own stream stays untouched.
    Engine direct(4242);
    Engine sub = nofis::rng::substream(4242, 0);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (direct() == sub()) ++same;
    EXPECT_LE(same, 1);
}

TEST(Normal, MomentsOfStandardNormal) {
    Engine eng(11);
    const int n = 200000;
    double s1 = 0.0, s2 = 0.0, s3 = 0.0, s4 = 0.0;
    for (int i = 0; i < n; ++i) {
        const double x = nofis::rng::standard_normal(eng);
        s1 += x;
        s2 += x * x;
        s3 += x * x * x;
        s4 += x * x * x * x;
    }
    EXPECT_NEAR(s1 / n, 0.0, 0.01);
    EXPECT_NEAR(s2 / n, 1.0, 0.02);
    EXPECT_NEAR(s3 / n, 0.0, 0.05);
    EXPECT_NEAR(s4 / n, 3.0, 0.1);
}

TEST(Normal, LogPdfMatchesClosedForm) {
    EXPECT_NEAR(nofis::rng::normal_log_pdf(0.0),
                -0.5 * std::log(2.0 * M_PI), 1e-12);
    EXPECT_NEAR(nofis::rng::normal_log_pdf(1.5),
                -0.5 * std::log(2.0 * M_PI) - 1.125, 1e-12);
    const double x[] = {1.0, -2.0, 0.5};
    const double expected = nofis::rng::normal_log_pdf(1.0) +
                            nofis::rng::normal_log_pdf(-2.0) +
                            nofis::rng::normal_log_pdf(0.5);
    EXPECT_NEAR(nofis::rng::standard_normal_log_pdf(x), expected, 1e-12);
}

TEST(Normal, CdfKnownValues) {
    EXPECT_NEAR(nofis::rng::normal_cdf(0.0), 0.5, 1e-14);
    EXPECT_NEAR(nofis::rng::normal_cdf(1.0), 0.8413447460685429, 1e-10);
    EXPECT_NEAR(nofis::rng::normal_cdf(-1.96), 0.024997895148220435, 1e-9);
}

class QuantileRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(QuantileRoundTrip, CdfOfQuantileIsIdentity) {
    const double p = GetParam();
    const double x = nofis::rng::normal_quantile(p);
    EXPECT_NEAR(nofis::rng::normal_cdf(x), p, 1e-10) << "p=" << p;
}

INSTANTIATE_TEST_SUITE_P(Probabilities, QuantileRoundTrip,
                         ::testing::Values(1e-9, 1e-6, 1e-4, 0.01, 0.1, 0.25,
                                           0.5, 0.75, 0.9, 0.99, 1.0 - 1e-6));

TEST(Normal, QuantileRejectsInvalid) {
    EXPECT_THROW(nofis::rng::normal_quantile(0.0), std::domain_error);
    EXPECT_THROW(nofis::rng::normal_quantile(1.0), std::domain_error);
    EXPECT_THROW(nofis::rng::normal_quantile(-0.5), std::domain_error);
}

TEST(Normal, MatrixSamplerShapeAndStats) {
    Engine eng(13);
    const auto m = nofis::rng::standard_normal_matrix(eng, 1000, 8);
    EXPECT_EQ(m.rows(), 1000u);
    EXPECT_EQ(m.cols(), 8u);
    EXPECT_NEAR(m.mean(), 0.0, 0.05);
}

}  // namespace
