#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "estimators/problem.hpp"
#include "rng/normal.hpp"
#include "testcases/deepnet62.hpp"
#include "testcases/registry.hpp"
#include "testcases/synthetic.hpp"

namespace {

using namespace nofis;
using testcases::TestCase;

// DeepNet62 trains a network at construction; build each case once for the
// whole suite.
class AllCases : public ::testing::TestWithParam<std::string> {
protected:
    static TestCase& get(const std::string& name) {
        static std::map<std::string, std::unique_ptr<TestCase>> cache;
        auto it = cache.find(name);
        if (it == cache.end())
            it = cache.emplace(name, testcases::make_case(name)).first;
        return *it->second;
    }
};

TEST_P(AllCases, MetadataIsConsistent) {
    TestCase& tc = get(GetParam());
    EXPECT_EQ(tc.name(), GetParam());
    EXPECT_GT(tc.dim(), 0u);
    EXPECT_GT(tc.golden_pr(), 0.0);
    EXPECT_LT(tc.golden_pr(), 1e-3) << "rare events only";
}

TEST_P(AllCases, NominalPointIsSafe) {
    TestCase& tc = get(GetParam());
    const std::vector<double> zero(tc.dim(), 0.0);
    EXPECT_GT(tc.g(zero), 0.0) << "the nominal design must not fail";
}

TEST_P(AllCases, GRejectsWrongDimension) {
    TestCase& tc = get(GetParam());
    EXPECT_THROW(tc.g(std::vector<double>(tc.dim() + 1)),
                 std::invalid_argument);
}

TEST_P(AllCases, NofisBudgetIsWellFormed) {
    TestCase& tc = get(GetParam());
    const auto b = tc.nofis_budget();
    ASSERT_FALSE(b.levels.empty());
    EXPECT_DOUBLE_EQ(b.levels.back(), 0.0);
    for (std::size_t i = 1; i < b.levels.size(); ++i)
        EXPECT_LT(b.levels[i], b.levels[i - 1]);
    EXPECT_GT(b.epochs, 0u);
    EXPECT_GT(b.samples_per_epoch, 0u);
    EXPECT_GT(b.n_is, 0u);
    EXPECT_GT(b.tau, 0.0);
}

TEST_P(AllCases, LevelsBracketGDistribution) {
    // a1 should be a common event (pilot-reachable) under p.
    TestCase& tc = get(GetParam());
    const auto b = tc.nofis_budget();
    rng::Engine eng(77);
    std::vector<double> x(tc.dim());
    int inside_a1 = 0;
    const int n = 400;
    for (int i = 0; i < n; ++i) {
        rng::fill_standard_normal(eng, x);
        if (tc.g(x) <= b.levels.front()) ++inside_a1;
    }
    EXPECT_GT(inside_a1, n / 50)
        << "first level too rare for stage-1 training";
}

TEST_P(AllCases, GradientMatchesFiniteDifference) {
    TestCase& tc = get(GetParam());
    rng::Engine eng(99);
    std::vector<double> x(tc.dim());
    rng::fill_standard_normal(eng, x);
    std::vector<double> grad(tc.dim());
    const double g0 = tc.g_grad(x, grad);
    EXPECT_NEAR(g0, tc.g(x), 1e-9);
    // Directional FD check along a random direction (robust to the max/min
    // kinks in Leaf/Cube away from the boundary).
    std::vector<double> dir(tc.dim());
    rng::fill_standard_normal(eng, dir);
    const double h = 1e-5;
    std::vector<double> xp(x), xm(x);
    for (std::size_t i = 0; i < tc.dim(); ++i) {
        xp[i] += h * dir[i];
        xm[i] -= h * dir[i];
    }
    const double fd = (tc.g(xp) - tc.g(xm)) / (2.0 * h);
    double an = 0.0;
    for (std::size_t i = 0; i < tc.dim(); ++i) an += grad[i] * dir[i];
    const double scale = std::max({1.0, std::abs(fd), std::abs(an)});
    EXPECT_LT(std::abs(fd - an) / scale, 1e-3) << GetParam();
}

TEST_P(AllCases, CountedProblemCountsCalls) {
    TestCase& tc = get(GetParam());
    estimators::CountedProblem counted(tc);
    rng::Engine eng(5);
    const auto x = rng::standard_normal_matrix(eng, 7, tc.dim());
    counted.g_rows(x);
    EXPECT_EQ(counted.calls(), 7u);
    std::vector<double> grad(tc.dim());
    counted.g_grad(x.row_span(0), grad);
    EXPECT_EQ(counted.calls(), 8u);
    counted.reset_calls();
    EXPECT_EQ(counted.calls(), 0u);
}

namespace {
std::vector<std::string> table1_and_extension_cases() {
    auto names = testcases::all_case_names();
    for (auto& n : testcases::extension_case_names()) names.push_back(n);
    return names;
}
}  // namespace

INSTANTIATE_TEST_SUITE_P(Registry, AllCases,
                         ::testing::ValuesIn(table1_and_extension_cases()));

// ---------------------------------------------------------------------------
// Case-specific behaviour
// ---------------------------------------------------------------------------

TEST(Registry, KnowsAllTenCases) {
    EXPECT_EQ(testcases::all_case_names().size(), 10u);
    EXPECT_THROW(testcases::make_case("NoSuchCase"), std::invalid_argument);
}

TEST(LeafCase, FailureRegionIsTheTwoDiscs) {
    testcases::LeafCase leaf;
    EXPECT_LT(leaf.g(std::vector<double>{3.8, 3.8}), 0.0);
    EXPECT_LT(leaf.g(std::vector<double>{-3.8, -3.8}), 0.0);
    EXPECT_GT(leaf.g(std::vector<double>{3.8, -3.8}), 0.0);
    EXPECT_GT(leaf.g(std::vector<double>{0.0, 0.0}), 0.0);
    // Boundary: distance² - 1 = 0 at radius 1.
    EXPECT_NEAR(leaf.g(std::vector<double>{2.8, 3.8}), 0.0, 1e-12);
}

TEST(CubeCase, AnalyticGoldenMatchesFormula) {
    testcases::CubeCase cube;
    EXPECT_NEAR(cube.golden_pr(), testcases::CubeCase::analytic_prob(0.0),
                1e-11);
    // The corner event: all coordinates above 1.8.
    EXPECT_LT(cube.g(std::vector<double>(6, 2.0)), 0.0);
    std::vector<double> one_low(6, 2.0);
    one_low[3] = 1.7;
    EXPECT_GT(cube.g(one_low), 0.0);
}

TEST(CubeCase, AnalyticLevelsMatchDecadeDesign) {
    // The hard-coded level schedule was built so P[Ω_{a_m}] ≈ 10^{-m}.
    testcases::CubeCase cube;
    const auto levels = cube.nofis_budget().levels;
    for (std::size_t m = 0; m + 1 < levels.size(); ++m) {
        const double p = testcases::CubeCase::analytic_prob(levels[m]);
        EXPECT_NEAR(std::log10(p), -static_cast<double>(m + 1), 0.05)
            << "level " << m;
    }
}

TEST(SyntheticFunctions, KnownValues) {
    // rosenbrock(1,...,1) = 0; levy(1,...,1) = 0; powell(0,...,0) = 0.
    EXPECT_DOUBLE_EQ(testcases::rosenbrock(std::vector<double>(10, 1.0)), 0.0);
    EXPECT_NEAR(testcases::levy(std::vector<double>(20, 1.0)), 0.0, 1e-12);
    EXPECT_DOUBLE_EQ(testcases::powell(std::vector<double>(40, 0.0)), 0.0);
    // rosenbrock(0, 0) = 1 per pair term.
    EXPECT_DOUBLE_EQ(testcases::rosenbrock(std::vector<double>(2, 0.0)), 1.0);
}

TEST(DeepNet62, NominalMetricComfortablyAboveThreshold) {
    testcases::DeepNet62Case net;
    EXPECT_GT(net.nominal_metric(), 0.93);
    EXPECT_GT(net.g(std::vector<double>(62, 0.0)), 0.04);
}

TEST(DeepNet62, DeterministicAcrossInstances) {
    testcases::DeepNet62Case a;
    testcases::DeepNet62Case b;
    rng::Engine eng(6);
    std::vector<double> x(62);
    rng::fill_standard_normal(eng, x);
    EXPECT_DOUBLE_EQ(a.g(x), b.g(x));
}

TEST(DeepNet62, LargePerturbationDegradesMetric) {
    testcases::DeepNet62Case net;
    std::vector<double> x(62, 0.0);
    const double g0 = net.g(x);
    for (double& v : x) v = -3.0;
    EXPECT_LT(net.g(x), g0);
}

}  // namespace
