// Tests for the latent-space exploration estimator (DESIGN.md §16):
// annealing ladder, Metropolis chains in the flow's base space, refinement
// fit, defensive-mixture final IS, and the NofisEstimator integration —
// including the honest g-call ledger and the bitwise determinism contract.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <memory>

#include "core/levels.hpp"
#include "core/nofis.hpp"
#include "estimators/guarded_problem.hpp"
#include "evalcache/eval_cache.hpp"
#include "latent/anneal.hpp"
#include "latent/chain.hpp"
#include "latent/latent_explore.hpp"
#include "latent/refine.hpp"
#include "parallel/thread_pool.hpp"
#include "rng/normal.hpp"
#include "telemetry/telemetry.hpp"
#include "testcases/fault_injector.hpp"

namespace {

using namespace nofis;
using core::LevelSchedule;
using core::NofisConfig;
using core::NofisEstimator;
using latent::AnnealKind;
using latent::AnnealSchedule;

/// Cheap 2-D analytic problem: Ω = {x0 >= t}, P = 1 - Φ(t).
class HalfSpace2D final : public estimators::RareEventProblem {
public:
    explicit HalfSpace2D(double t) : t_(t) {}
    std::size_t dim() const noexcept override { return 2; }
    double g(std::span<const double> x) const override { return t_ - x[0]; }
    double g_grad(std::span<const double> x,
                  std::span<double> grad) const override {
        grad[0] = -1.0;
        grad[1] = 0.0;
        return t_ - x[0];
    }
    double analytic() const { return 1.0 - rng::normal_cdf(t_); }

private:
    double t_;
};

NofisConfig small_latent_config() {
    NofisConfig cfg;
    cfg.layers_per_block = 4;
    cfg.hidden = {16, 16};
    cfg.epochs = 60;
    cfg.samples_per_epoch = 40;
    cfg.learning_rate = 7e-3;
    cfg.lr_decay = 0.99;
    cfg.tau = 10.0;
    cfg.n_is = 800;
    cfg.latent.enabled = true;
    cfg.latent.chains = 4;
    cfg.latent.steps = 10;
    return cfg;
}

/// Small freshly-initialised stack — a near-identity transport (the
/// conditioner MLPs start at small random weights), good enough for chain
/// mechanics tests that do not need a trained proposal.
flow::CouplingStack fresh_stack(std::size_t dim, std::uint64_t seed) {
    flow::StackConfig cfg;
    cfg.dim = dim;
    cfg.num_blocks = 1;
    cfg.layers_per_block = 2;
    cfg.hidden = {8};
    rng::Engine eng(seed);
    return flow::CouplingStack(cfg, eng);
}

bool same_bits(double a, double b) {
    return std::memcmp(&a, &b, sizeof(double)) == 0;
}

// ---------------------------------------------------------------------------
// AnnealSchedule
// ---------------------------------------------------------------------------
TEST(Anneal, ParseRoundTripAndRejectsUnknown) {
    EXPECT_EQ(latent::parse_anneal("linear"), AnnealKind::kLinear);
    EXPECT_EQ(latent::parse_anneal("geom"), AnnealKind::kGeom);
    EXPECT_EQ(latent::parse_anneal("none"), AnnealKind::kNone);
    EXPECT_THROW(latent::parse_anneal("cosine"), std::invalid_argument);
    EXPECT_STREQ(latent::anneal_name(AnnealKind::kLinear), "linear");
    EXPECT_STREQ(latent::anneal_name(AnnealKind::kGeom), "geom");
    EXPECT_STREQ(latent::anneal_name(AnnealKind::kNone), "none");
}

TEST(Anneal, LaddersStartAtAStartAndEndAtExactlyZero) {
    for (const auto kind : {AnnealKind::kLinear, AnnealKind::kGeom}) {
        const AnnealSchedule s(kind, 2.0, 10);
        EXPECT_DOUBLE_EQ(s.level(0), 2.0) << latent::anneal_name(kind);
        EXPECT_EQ(s.level(10), 0.0) << latent::anneal_name(kind);
        EXPECT_EQ(s.level(999), 0.0) << latent::anneal_name(kind);
        for (std::size_t t = 1; t <= 10; ++t)
            EXPECT_LE(s.level(t), s.level(t - 1))
                << latent::anneal_name(kind) << " step " << t;
    }
}

TEST(Anneal, NoneAndNonPositiveStartCollapseToZero) {
    const AnnealSchedule none(AnnealKind::kNone, 5.0, 10);
    const AnnealSchedule flat(AnnealKind::kLinear, 0.0, 10);
    for (std::size_t t = 0; t <= 10; ++t) {
        EXPECT_EQ(none.level(t), 0.0);
        EXPECT_EQ(flat.level(t), 0.0);
    }
}

// ---------------------------------------------------------------------------
// Metropolis chains in base space
// ---------------------------------------------------------------------------
TEST(Explore, DeterministicAcrossRepeatsAndThreadCounts) {
    const auto stack = fresh_stack(2, 11);
    HalfSpace2D prob(2.0);
    latent::ChainConfig cfg;
    cfg.chains = 4;
    cfg.steps = 20;
    cfg.tau = 5.0;
    cfg.a_start = 1.0;

    const auto a = latent::explore(stack, prob, cfg, 0xfeedULL);
    const auto b = latent::explore(stack, prob, cfg, 0xfeedULL);
    parallel::set_num_threads(8);
    const auto c = latent::explore(stack, prob, cfg, 0xfeedULL);
    parallel::set_num_threads(1);

    ASSERT_EQ(a.harvest.rows(), b.harvest.rows());
    ASSERT_EQ(a.harvest.rows(), c.harvest.rows());
    EXPECT_EQ(a.accepted, b.accepted);
    EXPECT_EQ(a.accepted, c.accepted);
    for (std::size_t r = 0; r < a.harvest.rows(); ++r)
        for (std::size_t j = 0; j < a.harvest.cols(); ++j) {
            EXPECT_TRUE(same_bits(a.harvest(r, j), b.harvest(r, j)));
            EXPECT_TRUE(same_bits(a.harvest(r, j), c.harvest(r, j)));
        }
}

TEST(Explore, LedgerMatchesConfig) {
    const auto stack = fresh_stack(2, 7);
    HalfSpace2D prob(1.5);
    latent::ChainConfig cfg;
    cfg.chains = 3;
    cfg.steps = 8;
    const auto res = latent::explore(stack, prob, cfg, 1);
    EXPECT_EQ(res.g_calls, 3u * 9u);
    EXPECT_EQ(res.proposals, 3u * 8u);
    EXPECT_LE(res.accepted, res.proposals);
    // steps/2 burn-in, the rest harvested for every chain.
    EXPECT_EQ(res.harvest.rows(), (8u - 4u) * 3u);
    EXPECT_EQ(res.harvest_chain.size(), res.harvest.rows());
}

TEST(Explore, ChainsMigrateIntoShiftedFailureLobe) {
    // Failure at x0 >= 3 — about 4.9σ of base mass away from the origin
    // start. The annealed tempered target must pull the walkers there.
    const auto stack = fresh_stack(2, 3);
    HalfSpace2D prob(3.0);
    latent::ChainConfig cfg;
    cfg.chains = 4;
    cfg.steps = 200;
    cfg.tau = 5.0;
    cfg.a_start = 2.0;
    const auto res = latent::explore(stack, prob, cfg, 99);
    double mean_x0 = 0.0;
    for (std::size_t r = 0; r < res.harvest.rows(); ++r)
        mean_x0 += res.harvest(r, 0);
    mean_x0 /= static_cast<double>(res.harvest.rows());
    EXPECT_GT(mean_x0, 1.0);
    EXPECT_GT(res.acceptance_rate(), 0.05);
    EXPECT_LT(res.acceptance_rate(), 0.95);
}

TEST(Explore, ValidatesArguments) {
    const auto stack = fresh_stack(2, 5);
    HalfSpace2D prob(1.0);
    latent::ChainConfig cfg;
    cfg.chains = 0;
    EXPECT_THROW(latent::explore(stack, prob, cfg, 1),
                 std::invalid_argument);
    cfg.chains = 2;
    cfg.steps = 0;
    EXPECT_THROW(latent::explore(stack, prob, cfg, 1),
                 std::invalid_argument);
    const auto stack3 = fresh_stack(3, 5);
    cfg.steps = 4;
    EXPECT_THROW(latent::explore(stack3, prob, cfg, 1),
                 std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Refinement fit
// ---------------------------------------------------------------------------
TEST(Refine, OneComponentPerChainNearItsStates) {
    latent::ExploreResult ex;
    ex.harvest = linalg::Matrix(8, 2);
    // Chain 0 parked near (5, 0); chain 1 near (-5, 0).
    for (std::size_t r = 0; r < 8; ++r) {
        const bool first = r % 2 == 0;
        ex.harvest(r, 0) = first ? 5.0 + 0.01 * static_cast<double>(r)
                                 : -5.0 - 0.01 * static_cast<double>(r);
        ex.harvest(r, 1) = 0.1 * static_cast<double>(r % 4);
        ex.harvest_chain.push_back(first ? 0 : 1);
    }
    latent::RefineConfig rc;
    rc.em_iters = 0;  // keep the raw per-chain moment fit
    const auto mix = latent::fit_refinement(ex, 2, rc);
    ASSERT_EQ(mix.num_components(), 2u);
    double lo = 0.0, hi = 0.0;
    for (std::size_t c = 0; c < 2; ++c) {
        lo = std::min(lo, mix.component(c).mean[0]);
        hi = std::max(hi, mix.component(c).mean[0]);
    }
    EXPECT_NEAR(hi, 5.0, 0.2);
    EXPECT_NEAR(lo, -5.0, 0.2);
    for (std::size_t c = 0; c < 2; ++c)
        for (const double s : mix.component(c).sigma)
            EXPECT_GE(s, rc.sigma_floor);
}

TEST(Refine, RejectsEmptyHarvest) {
    latent::ExploreResult ex;
    EXPECT_THROW(latent::fit_refinement(ex, 2), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Full estimator integration
// ---------------------------------------------------------------------------
TEST(LatentRun, AccuracyAndExactCallAccounting) {
    HalfSpace2D prob(2.8);
    const NofisConfig cfg = small_latent_config();
    NofisEstimator est(cfg, LevelSchedule::manual({1.5, 0.6, 0.0}));
    rng::Engine eng(4);
    const auto run = est.run(prob, eng);

    ASSERT_FALSE(run.estimate.failed);
    // Same total budget as a plain run: training plus exactly n_is.
    EXPECT_EQ(run.estimate.calls,
              3u * cfg.epochs * cfg.samples_per_epoch + cfg.n_is);
    const auto& rep = run.latent_report;
    EXPECT_EQ(rep.explore_calls, cfg.latent.chains * (cfg.latent.steps + 1));
    EXPECT_EQ(rep.explore_calls + rep.final_is_draws, cfg.n_is);
    EXPECT_EQ(rep.harvest_rows,
              (cfg.latent.steps - cfg.latent.steps / 2) * cfg.latent.chains);
    EXPECT_GE(rep.components, 1u);
    EXPECT_LE(rep.components, cfg.latent.chains);
    EXPECT_LT(estimators::log_error(run.estimate.p_hat, prob.analytic()),
              1.0);
    EXPECT_GT(run.is_diag.hits, 0u);
}

TEST(LatentRun, HonestLedgerSumsToProblemCalls) {
    HalfSpace2D inner(2.5);
    testcases::FaultInjectorConfig fic;  // all rates zero: pure call counter
    // The phase counters ledger g-VALUE evaluations; keep the injector's
    // counter on the same basis by letting gradient calls pass through.
    fic.affect_grad = false;
    const testcases::FaultInjector prob(inner, fic);

    telemetry::RunTrace trace;
    telemetry::set_active(&trace);
    const NofisConfig cfg = small_latent_config();
    NofisEstimator est(cfg, LevelSchedule::manual({1.4, 0.6, 0.0}));
    rng::Engine eng(9);
    const auto res = est.estimate(prob, eng);
    telemetry::set_active(nullptr);

    ASSERT_FALSE(res.failed);
    const auto train = trace.counter("g_calls.train");
    const auto final_is = trace.counter("g_calls.final_is");
    const auto explore = trace.counter("g_calls.latent_explore");
    EXPECT_GT(train, 0u);
    EXPECT_GT(final_is, 0u);
    EXPECT_EQ(explore, cfg.latent.chains * (cfg.latent.steps + 1));
    // Every g evaluation the estimator made is attributed to exactly one
    // phase counter — nothing double-counted, nothing dropped.
    EXPECT_EQ(train + final_is + explore, prob.calls());
    EXPECT_EQ(train + final_is + explore, res.calls);
}

TEST(LatentRun, BitwiseIdenticalAcrossCacheOffColdWarm) {
    HalfSpace2D prob(2.6);
    const auto run_with = [&](std::shared_ptr<evalcache::EvalCache> cache) {
        NofisConfig cfg = small_latent_config();
        cfg.epochs = 30;
        if (cache) {
            cfg.cache = std::move(cache);
            cfg.cache_key = "latent-halfspace-test";
        }
        NofisEstimator est(cfg, LevelSchedule::manual({1.4, 0.0}));
        rng::Engine eng(21);
        return est.estimate(prob, eng);
    };
    const auto off = run_with(nullptr);
    const auto cache =
        std::make_shared<evalcache::EvalCache>(evalcache::CacheConfig{});
    const auto cold = run_with(cache);
    const auto warm = run_with(cache);
    EXPECT_TRUE(same_bits(off.p_hat, cold.p_hat));
    EXPECT_TRUE(same_bits(off.p_hat, warm.p_hat));
    EXPECT_EQ(off.calls, cold.calls);
    EXPECT_EQ(off.calls, warm.calls);
    // Only the fresh/cached split may move.
    EXPECT_EQ(cold.cached_calls, 0u);
    EXPECT_GT(warm.cached_calls, 0u);
}

TEST(LatentRun, ThrowsWhenExplorationEatsTheWholeBudget) {
    const auto stack = fresh_stack(2, 13);
    HalfSpace2D prob(2.0);
    const estimators::GuardedProblem guarded(prob);
    latent::LatentConfig cfg;
    cfg.enabled = true;
    cfg.chains = 4;
    cfg.steps = 10;  // exploration needs 44 calls
    rng::Engine eng(1);
    EXPECT_THROW(latent::explore_and_estimate(stack, guarded, eng, 44, 10.0,
                                              1.0, cfg),
                 std::invalid_argument);
    EXPECT_THROW(latent::explore_and_estimate(stack, guarded, eng, 20, 10.0,
                                              1.0, cfg),
                 std::invalid_argument);
}

TEST(LatentRun, AlphaValidated) {
    const auto stack = fresh_stack(2, 13);
    HalfSpace2D prob(2.0);
    const estimators::GuardedProblem guarded(prob);
    latent::LatentConfig cfg;
    cfg.enabled = true;
    cfg.chains = 2;
    cfg.steps = 4;
    rng::Engine eng(1);
    for (const double bad : {0.0, -0.5, 1.5}) {
        cfg.alpha = bad;
        EXPECT_THROW(latent::explore_and_estimate(stack, guarded, eng, 200,
                                                  10.0, 1.0, cfg),
                     std::invalid_argument)
            << "alpha " << bad;
    }
}

}  // namespace
