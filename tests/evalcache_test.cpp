#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/levels.hpp"
#include "core/nofis.hpp"
#include "estimators/guarded_problem.hpp"
#include "evalcache/cached_problem.hpp"
#include "evalcache/disk_log.hpp"
#include "evalcache/eval_cache.hpp"
#include "parallel/thread_pool.hpp"
#include "rng/normal.hpp"
#include "telemetry/telemetry.hpp"
#include "testcases/case_factory.hpp"
#include "testcases/fault_injector.hpp"

namespace {

using namespace nofis;
using core::LevelSchedule;
using core::NofisConfig;
using core::NofisEstimator;
using evalcache::CacheConfig;
using evalcache::CachedProblem;
using evalcache::DiskLog;
using evalcache::EvalCache;

namespace fs = std::filesystem;

/// Ω = {x0 >= t}, P = 1 - Φ(t); cheap and analytic so every test below is
/// about the cache, not the model.
class HalfSpace2D final : public estimators::RareEventProblem {
public:
    explicit HalfSpace2D(double t) : t_(t) {}
    std::size_t dim() const noexcept override { return 2; }
    double g(std::span<const double> x) const override { return t_ - x[0]; }
    double g_grad(std::span<const double> x,
                  std::span<double> grad) const override {
        grad[0] = -1.0;
        grad[1] = 0.0;
        return t_ - x[0];
    }

private:
    double t_;
};

struct PoolGuard {
    ~PoolGuard() { parallel::set_num_threads(0); }
};

/// Unique temp directory per test, removed on teardown.
class TempDirFixture : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = ::testing::TempDir() + "nofis_evc_" +
               ::testing::UnitTest::GetInstance()->current_test_info()->name();
        fs::remove_all(dir_);
        fs::create_directories(dir_);
    }
    void TearDown() override { fs::remove_all(dir_); }

    std::string dir_;
};

NofisConfig tiny_config() {
    NofisConfig cfg;
    cfg.layers_per_block = 4;
    cfg.hidden = {8, 8};
    cfg.epochs = 20;
    cfg.samples_per_epoch = 30;
    cfg.learning_rate = 7e-3;
    cfg.tau = 10.0;
    cfg.n_is = 400;
    return cfg;
}

std::vector<double> random_point(rng::Engine& eng, std::size_t d) {
    std::vector<double> x(d);
    for (double& v : x) v = rng::standard_normal(eng);
    return x;
}

// ---------------------------------------------------------------------------
// Tier 1: exact keys, LRU eviction
// ---------------------------------------------------------------------------

// With every key hashed to the same bucket, distinct rows must still
// resolve to their own values: correctness may never depend on the hash.
TEST(EvalCacheMem, ExactKeyNoHashCollisions) {
    CacheConfig cfg;
    cfg.test_constant_hash = true;  // adversarial: all keys collide
    cfg.shards = 1;
    EvalCache cache(cfg);
    const auto ns = cache.open_namespace("collide#d2", 2);

    const std::vector<std::vector<double>> rows = {
        {0.0, 0.0}, {-0.0, 0.0}, {1.0, 2.0}, {2.0, 1.0}, {1e-300, -1e300}};
    for (std::size_t i = 0; i < rows.size(); ++i)
        cache.insert(ns, rows[i], static_cast<double>(i) + 0.5);

    // 0.0 and -0.0 differ bitwise, so they are distinct cache keys.
    for (std::size_t i = 0; i < rows.size(); ++i) {
        double v = 0.0;
        ASSERT_TRUE(cache.lookup(ns, rows[i], v)) << "row " << i;
        EXPECT_EQ(v, static_cast<double>(i) + 0.5) << "row " << i;
    }
    const std::vector<double> unseen = {3.0, 3.0};
    double v = 0.0;
    EXPECT_FALSE(cache.lookup(ns, unseen, v));

    // The same row under a different namespace is a different key.
    const auto other = cache.open_namespace("other#d2", 2);
    EXPECT_FALSE(cache.lookup(other, rows[2], v));
}

TEST(EvalCacheMem, NamespaceDimMismatchThrows) {
    EvalCache cache(CacheConfig{});
    cache.open_namespace("case#d2", 2);
    EXPECT_THROW(cache.open_namespace("case#d2", 3), std::runtime_error);
}

TEST(EvalCacheMem, NonFiniteValuesAreNeverStored) {
    EvalCache cache(CacheConfig{});
    const auto ns = cache.open_namespace("nan#d1", 1);
    const std::vector<double> x = {1.0};
    cache.insert(ns, x, std::numeric_limits<double>::quiet_NaN());
    cache.insert(ns, x, std::numeric_limits<double>::infinity());
    double v = 0.0;
    EXPECT_FALSE(cache.lookup(ns, x, v));
    EXPECT_EQ(cache.stats().insertions, 0u);
}

TEST(EvalCacheMem, LruEvictionAtByteCap) {
    CacheConfig cfg;
    cfg.shards = 1;
    // Room for two dim-2 entries, not three.
    cfg.mem_bytes = 2 * EvalCache::entry_bytes(2) + 8;
    EvalCache cache(cfg);
    const auto ns = cache.open_namespace("lru#d2", 2);

    const std::vector<double> a = {1.0, 0.0}, b = {2.0, 0.0}, c = {3.0, 0.0};
    cache.insert(ns, a, 1.0);
    cache.insert(ns, b, 2.0);
    cache.insert(ns, c, 3.0);  // evicts a (least recently used)

    double v = 0.0;
    EXPECT_FALSE(cache.lookup(ns, a, v)) << "oldest entry must be evicted";
    ASSERT_TRUE(cache.lookup(ns, b, v));
    EXPECT_EQ(v, 2.0);
    ASSERT_TRUE(cache.lookup(ns, c, v));
    EXPECT_EQ(v, 3.0);

    const auto stats = cache.stats();
    EXPECT_EQ(stats.evictions, 1u);
    EXPECT_EQ(stats.entries, 2u);
    EXPECT_LE(stats.bytes, cfg.mem_bytes);

    // A lookup refreshes recency: touch b, insert d, expect c evicted.
    ASSERT_TRUE(cache.lookup(ns, b, v));
    const std::vector<double> d = {4.0, 0.0};
    cache.insert(ns, d, 4.0);
    EXPECT_TRUE(cache.lookup(ns, b, v));
    EXPECT_FALSE(cache.lookup(ns, c, v));
}

// ---------------------------------------------------------------------------
// Tier 2: append-only log, crash recovery, compaction
// ---------------------------------------------------------------------------

TEST_F(TempDirFixture, DiskLogTruncatedTailRecovery) {
    const std::string path = dir_ + "/case.evc";
    std::uint64_t full_size = 0;
    {
        DiskLog log(path, "case#d2", 2);
        log.append(std::vector<double>{1.0, 2.0}, 10.0);
        log.append(std::vector<double>{3.0, 4.0}, 20.0);
        log.append(std::vector<double>{5.0, 6.0}, 30.0);
        EXPECT_EQ(log.records(), 3u);
        full_size = log.valid_bytes();
    }
    // Simulate a crash mid-append: drop 5 bytes of the last record.
    fs::resize_file(path, full_size - 5);

    {
        DiskLog log(path, "case#d2", 2);
        EXPECT_EQ(log.records(), 2u) << "torn tail record must be dropped";
        EXPECT_TRUE(log.tail_was_truncated());
        std::vector<std::pair<std::vector<double>, double>> seen;
        log.scan([&](std::uint64_t, std::span<const double> x, double v) {
            seen.emplace_back(std::vector<double>(x.begin(), x.end()), v);
        });
        ASSERT_EQ(seen.size(), 2u);
        EXPECT_EQ(seen[0].second, 10.0);
        EXPECT_EQ(seen[1].second, 20.0);

        // Appends continue cleanly from the recovered tail.
        log.append(std::vector<double>{7.0, 8.0}, 40.0);
        EXPECT_EQ(log.records(), 3u);
    }
    {
        DiskLog log(path, "case#d2", 2);
        EXPECT_EQ(log.records(), 3u);
        EXPECT_FALSE(log.tail_was_truncated());
    }
}

TEST_F(TempDirFixture, DiskLogHeaderMismatchThrows) {
    const std::string path = dir_ + "/case.evc";
    { DiskLog log(path, "case#d2", 2); }
    EXPECT_THROW(DiskLog(path, "case#d2", 3), std::runtime_error);
    EXPECT_THROW(DiskLog(path, "other#d2", 2), std::runtime_error);
    // Not a log at all.
    const std::string junk = dir_ + "/junk.evc";
    std::ofstream(junk) << "not a nofis eval log";
    EXPECT_FALSE(DiskLog::inspect(junk).has_value());
}

TEST_F(TempDirFixture, DiskLogCompactionDropsDuplicatesAndTornTail) {
    const std::string path = dir_ + "/case.evc";
    std::uint64_t full_size = 0;
    {
        DiskLog log(path, "case#d1", 1);
        log.append(std::vector<double>{1.0}, 10.0);
        log.append(std::vector<double>{2.0}, 20.0);
        log.append(std::vector<double>{1.0}, 11.0);  // duplicate key
        log.append(std::vector<double>{3.0}, 30.0);
        full_size = log.valid_bytes();
    }
    fs::resize_file(path, full_size - 3);  // tear the last record

    const auto result = DiskLog::compact(path);
    EXPECT_EQ(result.records_before, 3u);  // torn record already excluded
    EXPECT_EQ(result.records_after, 2u);   // {1.0} deduped, {3.0} torn away
    EXPECT_LT(result.bytes_after, result.bytes_before);

    DiskLog log(path, "case#d1", 1);
    EXPECT_EQ(log.records(), 2u);
    EXPECT_FALSE(log.tail_was_truncated());
    std::map<double, double> seen;
    log.scan([&](std::uint64_t, std::span<const double> x, double v) {
        seen[x[0]] = v;
    });
    ASSERT_EQ(seen.size(), 2u);
    EXPECT_EQ(seen.at(1.0), 11.0) << "last write wins";
    EXPECT_EQ(seen.at(2.0), 20.0);
}

TEST_F(TempDirFixture, DiskTierPersistsAcrossCacheInstances) {
    CacheConfig cfg;
    cfg.dir = dir_;
    const std::vector<double> x = {0.25, -0.75};
    {
        EvalCache cache(cfg);
        const auto ns = cache.open_namespace("persist#d2", 2);
        cache.insert(ns, x, 42.0);
    }
    EvalCache cache(cfg);  // fresh memory tier, same directory
    const auto ns = cache.open_namespace("persist#d2", 2);
    double v = 0.0;
    ASSERT_TRUE(cache.lookup(ns, x, v));
    EXPECT_EQ(v, 42.0);
    EXPECT_EQ(cache.stats().disk_hits, 1u);
    // The hit was promoted to tier 1: a second lookup stays in memory.
    ASSERT_TRUE(cache.lookup(ns, x, v));
    EXPECT_EQ(cache.stats().disk_hits, 1u);
}

// ---------------------------------------------------------------------------
// Decorator: fault-retry non-poisoning
// ---------------------------------------------------------------------------

// Guarded(Cached(FaultInjector(problem))): whatever the injector does, a
// value that lands in the cache must be the true g — clamped or faulted
// evaluations are never stored.
TEST(CachedProblemFaults, RetryNeverPoisonsTheCache) {
    HalfSpace2D truth(2.0);
    testcases::FaultInjectorConfig icfg;
    icfg.nan_rate = 0.25;
    icfg.throw_rate = 0.1;
    icfg.seed = 77;
    const testcases::FaultInjector injected(truth, icfg);

    auto cache = std::make_shared<EvalCache>(CacheConfig{});
    const CachedProblem cached(injected, cache, "half#d2");
    estimators::GuardConfig gcfg;
    gcfg.policy = estimators::GuardConfig::Policy::kRetryPerturb;
    const estimators::GuardedProblem guarded(cached, gcfg);

    rng::Engine eng(5);
    std::vector<std::vector<double>> rows;
    for (int i = 0; i < 300; ++i) {
        rows.push_back(random_point(eng, 2));
        const double g = guarded.g(rows.back());
        EXPECT_TRUE(std::isfinite(g));
    }
    ASSERT_GT(injected.injected_total(), 0u) << "test exercised no faults";

    const auto ns = cache->open_namespace("half#d2", 2);
    std::size_t present = 0;
    for (const auto& row : rows) {
        double v = 0.0;
        if (!cache->lookup(ns, row, v)) continue;  // faulted-at-x rows may
        ++present;                                 // only exist perturbed
        EXPECT_EQ(v, truth.g(row)) << "cached value differs from true g";
    }
    EXPECT_GT(present, 0u);
}

TEST(CachedProblemFaults, ClampedValuesAreNeverStored) {
    HalfSpace2D truth(2.0);
    testcases::FaultInjectorConfig icfg;
    icfg.nan_burst_begin = 0;
    icfg.nan_burst_end = 5;  // first five calls fault deterministically
    const testcases::FaultInjector injected(truth, icfg);

    auto cache = std::make_shared<EvalCache>(CacheConfig{});
    const CachedProblem cached(injected, cache, "half#d2");
    estimators::GuardConfig gcfg;
    gcfg.policy = estimators::GuardConfig::Policy::kClampToFail;
    const estimators::GuardedProblem guarded(cached, gcfg);

    rng::Engine eng(9);
    std::vector<std::vector<double>> faulted, clean;
    for (int i = 0; i < 5; ++i) {
        faulted.push_back(random_point(eng, 2));
        EXPECT_EQ(guarded.g(faulted.back()), gcfg.clamp_value);
    }
    for (int i = 0; i < 5; ++i) {
        clean.push_back(random_point(eng, 2));
        EXPECT_EQ(guarded.g(clean.back()), truth.g(clean.back()));
    }

    const auto ns = cache->open_namespace("half#d2", 2);
    double v = 0.0;
    for (const auto& row : faulted)
        EXPECT_FALSE(cache->lookup(ns, row, v))
            << "a clamped/faulted row must not be cached";
    for (const auto& row : clean) {
        ASSERT_TRUE(cache->lookup(ns, row, v));
        EXPECT_EQ(v, truth.g(row));
    }
}

TEST(CachedProblemFaults, ThrowsPropagateWithoutStoring) {
    HalfSpace2D truth(1.0);
    testcases::FaultInjectorConfig icfg;
    icfg.throw_rate = 1.0;
    const testcases::FaultInjector injected(truth, icfg);
    auto cache = std::make_shared<EvalCache>(CacheConfig{});
    const CachedProblem cached(injected, cache, "half#d2");

    const std::vector<double> x = {0.5, 0.5};
    EXPECT_THROW(cached.g(x), std::exception);
    double v = 0.0;
    EXPECT_FALSE(cache->lookup(cache->open_namespace("half#d2", 2), x, v));
    EXPECT_EQ(cached.misses(), 1u) << "a throwing arrival still counts";
}

// ---------------------------------------------------------------------------
// Case factory
// ---------------------------------------------------------------------------

TEST(CaseFactory, MemoizesAndValidates) {
    testcases::CaseFactory factory;
    const auto& a = factory.get("Leaf");
    const auto& b = factory.get("Leaf");
    EXPECT_EQ(&a, &b) << "same name must yield the same instance";
    EXPECT_THROW(factory.get("NoSuchCase"), std::invalid_argument);
    EXPECT_EQ(testcases::cache_key(a), "Leaf#d" + std::to_string(a.dim()));
    EXPECT_EQ(testcases::cache_key("X", 7), "X#d7");
}

// ---------------------------------------------------------------------------
// End-to-end: bitwise identity off/cold/warm across thread counts, honest
// accounting
// ---------------------------------------------------------------------------

TEST_F(TempDirFixture, NofisBitwiseIdenticalOffColdWarmAcrossThreads) {
    const PoolGuard pool_guard;
    HalfSpace2D prob(2.0);
    const LevelSchedule levels = LevelSchedule::manual({1.0, 0.0});

    const auto run_with =
        [&](std::shared_ptr<EvalCache> cache,
            std::size_t threads) -> estimators::EstimateResult {
        NofisConfig cfg = tiny_config();
        cfg.threads = threads;
        cfg.cache = std::move(cache);
        cfg.cache_key = "half#d2";
        NofisEstimator est(cfg, levels);
        rng::Engine eng(17);
        return est.run(prob, eng).estimate;
    };

    CacheConfig ccfg;
    ccfg.dir = dir_;

    const auto off = run_with(nullptr, 1);
    const auto cold = run_with(std::make_shared<EvalCache>(ccfg), 1);
    // Fresh memory tier over the same directory: a disk-warm run.
    const auto warm = run_with(std::make_shared<EvalCache>(ccfg), 1);

    EXPECT_EQ(off.p_hat, cold.p_hat) << "cold cache changed the estimate";
    EXPECT_EQ(off.p_hat, warm.p_hat) << "warm cache changed the estimate";
    EXPECT_EQ(off.calls, cold.calls);
    EXPECT_EQ(off.calls, warm.calls) << "totals must not depend on the cache";

    EXPECT_EQ(off.cached_calls, 0u);
    EXPECT_EQ(cold.cached_calls, 0u)
        << "a cold cache cannot serve anything on continuous draws";
    EXPECT_EQ(warm.cached_calls, warm.calls)
        << "a fully warm cache must serve every arrival";

    // Thread count changes neither the estimate nor the cache behaviour:
    // one shared cache, same results at 1 and 8 lanes.
    const auto shared = std::make_shared<EvalCache>(ccfg);
    const auto warm1 = run_with(shared, 1);
    const auto warm8 = run_with(shared, 8);
    EXPECT_EQ(warm1.p_hat, off.p_hat);
    EXPECT_EQ(warm8.p_hat, off.p_hat);
    EXPECT_EQ(warm8.cached_calls, warm8.calls);
}

TEST_F(TempDirFixture, MetricsSplitSumsToTotal) {
    const PoolGuard pool_guard;
    telemetry::RunTrace trace;
    telemetry::set_active(&trace);

    HalfSpace2D prob(2.0);
    NofisConfig cfg = tiny_config();
    CacheConfig ccfg;
    ccfg.dir = dir_;
    cfg.cache = std::make_shared<EvalCache>(ccfg);
    cfg.cache_key = "half#d2";
    NofisEstimator est(cfg, LevelSchedule::manual({1.0, 0.0}));

    rng::Engine eng(21);
    const auto first = est.run(prob, eng).estimate;
    rng::Engine eng2(21);
    const auto second = est.run(prob, eng2).estimate;  // warm replay
    telemetry::set_active(nullptr);

    EXPECT_EQ(trace.counter("g_calls.total"),
              trace.counter("g_calls.fresh") + trace.counter("g_calls.cached"))
        << "the honest-accounting invariant";
    EXPECT_EQ(trace.counter("g_calls.total"), first.calls + second.calls);
    EXPECT_EQ(trace.counter("g_calls.cached"), second.calls)
        << "the warm replay must be served entirely from the cache";
    EXPECT_GT(trace.counter("cache.hits"), 0u);
    EXPECT_EQ(first.p_hat, second.p_hat);
}

}  // namespace
