#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "estimators/adaptive_is.hpp"
#include "estimators/monte_carlo.hpp"
#include "estimators/problem.hpp"
#include "estimators/sir.hpp"
#include "estimators/sss.hpp"
#include "estimators/suc.hpp"
#include "estimators/sus.hpp"
#include "linalg/solver_error.hpp"
#include "rng/normal.hpp"
#include "testcases/synthetic.hpp"

namespace {

using namespace nofis;
using estimators::CountedProblem;
using estimators::RareEventProblem;

/// 1-D half-space problem with analytic probability: Ω = {x0 >= t},
/// P = 1 - Φ(t). Dimension padded so higher-D estimators exercise their
/// code paths.
class HalfSpace final : public RareEventProblem {
public:
    HalfSpace(std::size_t dim, double threshold)
        : dim_(dim), threshold_(threshold) {}
    std::size_t dim() const noexcept override { return dim_; }
    double g(std::span<const double> x) const override {
        return threshold_ - x[0];
    }
    double analytic() const { return 1.0 - rng::normal_cdf(threshold_); }

private:
    std::size_t dim_;
    double threshold_;
};

/// Tilted slab: Ω = {aᵀx >= t‖a‖}, analytic P = 1 - Φ(t).
class Slab final : public RareEventProblem {
public:
    Slab(std::vector<double> a, double t) : a_(std::move(a)), t_(t) {
        norm_ = linalg::norm2(a_);
    }
    std::size_t dim() const noexcept override { return a_.size(); }
    double g(std::span<const double> x) const override {
        return t_ * norm_ - linalg::dot(a_, x);
    }
    double analytic() const { return 1.0 - rng::normal_cdf(t_); }

private:
    std::vector<double> a_;
    double t_;
    double norm_;
};

TEST(LogError, Definition) {
    EXPECT_NEAR(estimators::log_error(1e-5, 1e-5), 0.0, 1e-12);
    EXPECT_NEAR(estimators::log_error(2.718281828e-5, 1e-5), 1.0, 1e-6);
    EXPECT_NEAR(estimators::log_error(1e-5, 2.718281828e-5), 1.0, 1e-6);
    // The floor keeps zero estimates finite.
    EXPECT_NEAR(estimators::log_error(0.0, 1e-5, 1e-10),
                std::log(1e-5) - std::log(1e-10), 1e-9);
    EXPECT_THROW(estimators::log_error(0.1, 0.0), std::invalid_argument);
}

TEST(MonteCarlo, UnbiasedOnCommonEvent) {
    HalfSpace prob(3, 1.0);  // P ≈ 0.1587
    estimators::MonteCarloEstimator mc({.num_samples = 200000, .batch = 8192});
    rng::Engine eng(1);
    const auto res = mc.estimate(prob, eng);
    EXPECT_EQ(res.calls, 200000u);
    EXPECT_NEAR(res.p_hat, prob.analytic(), 0.003);
    EXPECT_FALSE(res.failed);
}

TEST(MonteCarlo, ZeroEstimateOnVeryRareEvent) {
    HalfSpace prob(2, 6.0);  // P ≈ 1e-9
    estimators::MonteCarloEstimator mc({.num_samples = 10000, .batch = 4096});
    rng::Engine eng(2);
    EXPECT_DOUBLE_EQ(mc.estimate(prob, eng).p_hat, 0.0);
}

TEST(SubsetSimulation, RecoversHalfSpaceTail) {
    HalfSpace prob(4, 4.0);  // P ≈ 3.17e-5
    estimators::SubsetSimulationEstimator sus(
        {.samples_per_level = 3000, .p0 = 0.1, .max_levels = 10,
         .proposal_spread = 1.0});
    double mean = 0.0;
    const int reps = 5;
    for (int r = 0; r < reps; ++r) {
        rng::Engine eng(10 + r);
        const auto res = sus.estimate(prob, eng);
        ASSERT_FALSE(res.failed);
        mean += res.p_hat;
    }
    mean /= reps;
    EXPECT_LT(estimators::log_error(mean, prob.analytic()), 0.35);
}

TEST(SubsetSimulation, MatchesAnalyticCubeProbability) {
    testcases::CubeCase cube;
    estimators::SubsetSimulationEstimator sus(
        {.samples_per_level = 4000, .p0 = 0.1, .max_levels = 14,
         .proposal_spread = 1.0});
    double mean = 0.0;
    const int reps = 3;
    for (int r = 0; r < reps; ++r) {
        rng::Engine eng(30 + r);
        const auto res = sus.estimate(cube, eng);
        ASSERT_FALSE(res.failed);
        mean += res.p_hat;
    }
    mean /= reps;
    EXPECT_LT(estimators::log_error(mean, cube.golden_pr()), 1.0);
}

TEST(SubsetSimulation, TerminatesOnCommonEvent) {
    HalfSpace prob(2, 0.5);  // P ≈ 0.31 — level 0 already suffices.
    estimators::SubsetSimulationEstimator sus({.samples_per_level = 2000});
    rng::Engine eng(4);
    const auto res = sus.estimate(prob, eng);
    EXPECT_NEAR(res.p_hat, prob.analytic(), 0.03);
    EXPECT_EQ(res.calls, 2000u);
}

TEST(SubsetSimulation, FailsGracefullyAtMaxLevels) {
    HalfSpace prob(2, 15.0);  // essentially unreachable
    estimators::SubsetSimulationEstimator sus(
        {.samples_per_level = 500, .p0 = 0.1, .max_levels = 3});
    rng::Engine eng(5);
    const auto res = sus.estimate(prob, eng);
    EXPECT_TRUE(res.failed || res.p_hat < 1e-6);
}

TEST(ScaledSigma, RecoversLinearLimitState) {
    // For a half-space, log P(s) = log(1 - Φ(t/s)) is captured well by the
    // SSS model; extrapolation should land within a factor of ~2.
    HalfSpace prob(6, 4.2);  // P ≈ 1.33e-5
    estimators::ScaledSigmaEstimator sss(
        {.sigmas = {1.5, 2.0, 2.5, 3.0, 3.5, 4.0}, .total_samples = 120000});
    double mean_err = 0.0;
    const int reps = 3;
    for (int r = 0; r < reps; ++r) {
        rng::Engine eng(40 + r);
        const auto res = sss.estimate(prob, eng);
        ASSERT_FALSE(res.failed);
        mean_err += estimators::log_error(res.p_hat, prob.analytic());
    }
    EXPECT_LT(mean_err / reps, 1.0);
}

TEST(ScaledSigma, FailsWhenNoSigmaReachesFailure) {
    HalfSpace prob(2, 40.0);
    estimators::ScaledSigmaEstimator sss(
        {.sigmas = {1.5, 2.0, 2.5}, .total_samples = 3000});
    rng::Engine eng(6);
    const auto res = sss.estimate(prob, eng);
    EXPECT_TRUE(res.failed);
    EXPECT_EQ(res.calls, 3000u);  // 1000 per sigma x 3 — budget still spent
}

TEST(AdaptiveIs, FindsShiftedSlabRegion) {
    Slab prob({1.0, 1.0, 1.0}, 4.0);  // P ≈ 3.17e-5
    estimators::AdaptiveIsEstimator ais(
        {.num_components = 2, .iterations = 5,
         .samples_per_iteration = 3000, .final_samples = 4000});
    double mean_err = 0.0;
    const int reps = 3;
    for (int r = 0; r < reps; ++r) {
        rng::Engine eng(50 + r);
        const auto res = ais.estimate(prob, eng);
        mean_err += estimators::log_error(res.p_hat, prob.analytic());
    }
    EXPECT_LT(mean_err / reps, 0.5);
}

TEST(AdaptiveIs, CallAccountingMatchesConfig) {
    HalfSpace prob(2, 2.0);
    estimators::AdaptiveIsEstimator ais(
        {.num_components = 2, .iterations = 3,
         .samples_per_iteration = 500, .final_samples = 700});
    rng::Engine eng(7);
    EXPECT_EQ(ais.estimate(prob, eng).calls, 3u * 500u + 700u);
}

TEST(Sir, LearnsSmoothBoundary) {
    HalfSpace prob(4, 3.0);  // P ≈ 1.35e-3 — learnable boundary
    estimators::SirEstimator sir(
        {.train_samples = 20000, .surrogate_evals = 400000,
         .hidden = {32, 32}, .epochs = 40});
    rng::Engine eng(8);
    const auto res = sir.estimate(prob, eng);
    EXPECT_EQ(res.calls, 20000u);
    EXPECT_LT(estimators::log_error(res.p_hat, prob.analytic()), 1.0);
}

/// Wraps another problem and returns NaN for a deterministic fraction of
/// calls — the shape of a guarded problem running under the propagate
/// policy.
class SometimesNan final : public RareEventProblem {
public:
    SometimesNan(const RareEventProblem& inner, std::size_t every)
        : inner_(inner), every_(every) {}
    std::size_t dim() const noexcept override { return inner_.dim(); }
    double g(std::span<const double> x) const override {
        if (++calls_ % every_ == 0)
            return std::numeric_limits<double>::quiet_NaN();
        return inner_.g(x);
    }

private:
    const RareEventProblem& inner_;
    std::size_t every_;
    mutable std::size_t calls_ = 0;
};

TEST(Sir, NonFiniteTrainingRowsAreDroppedNotPoisonous) {
    // Regression: one NaN g-value used to poison the mean/sd
    // standardisation — every target went NaN and the surrogate trained on
    // garbage, collapsing the estimate. Now the rows are stripped and the
    // estimate stays in the same ballpark as the clean run.
    HalfSpace clean(4, 3.0);
    SometimesNan dirty(clean, 50);  // 2% of training rows go NaN
    estimators::SirEstimator sir(
        {.train_samples = 20000, .surrogate_evals = 400000,
         .hidden = {32, 32}, .epochs = 40});
    rng::Engine eng(8);
    const auto res = sir.estimate(dirty, eng);
    EXPECT_TRUE(std::isfinite(res.p_hat));
    EXPECT_GT(res.p_hat, 0.0);
    EXPECT_LT(estimators::log_error(res.p_hat, clean.analytic()), 1.0);
}

TEST(Sir, AllNanTrainingSetFailsLoudly) {
    HalfSpace clean(3, 2.0);
    SometimesNan dirty(clean, 1);  // every call returns NaN
    estimators::SirEstimator sir(
        {.train_samples = 200, .surrogate_evals = 1000, .hidden = {8}});
    rng::Engine eng(9);
    EXPECT_THROW(sir.estimate(dirty, eng), nofis::BadInputError);
}

TEST(Sir, ZeroBudgetsAreRejectedUpFront) {
    // surrogate_evals == 0 used to divide hits by zero and surface as a
    // silent NaN p_hat; train_samples == 0 trained on nothing.
    HalfSpace prob(3, 2.0);
    rng::Engine eng(10);
    {
        estimators::SirEstimator sir(
            {.train_samples = 100, .surrogate_evals = 0, .hidden = {8}});
        EXPECT_THROW(sir.estimate(prob, eng), nofis::BadInputError);
    }
    {
        estimators::SirEstimator sir(
            {.train_samples = 0, .surrogate_evals = 1000, .hidden = {8}});
        EXPECT_THROW(sir.estimate(prob, eng), nofis::BadInputError);
    }
}

TEST(Suc, EstimatesModeratelyRareHalfSpace) {
    HalfSpace prob(3, 3.5);  // P ≈ 2.3e-4
    estimators::SubsetClassificationEstimator suc(
        {.samples_per_level = 2500, .p0 = 0.1, .max_levels = 8});
    double mean_err = 0.0;
    int ok = 0;
    for (int r = 0; r < 3; ++r) {
        rng::Engine eng(60 + r);
        const auto res = suc.estimate(prob, eng);
        if (res.failed) continue;
        ++ok;
        mean_err += estimators::log_error(res.p_hat, prob.analytic());
    }
    ASSERT_GT(ok, 0);
    EXPECT_LT(mean_err / ok, 1.5);
}

TEST(CountedProblem, GradRowsShapesAndCounts) {
    HalfSpace prob(3, 1.0);
    CountedProblem counted(prob);
    rng::Engine eng(9);
    const auto x = rng::standard_normal_matrix(eng, 5, 3);
    linalg::Matrix grads;
    const auto vals = counted.g_grad_rows(x, grads);
    EXPECT_EQ(vals.size(), 5u);
    EXPECT_EQ(grads.rows(), 5u);
    EXPECT_EQ(grads.cols(), 3u);
    EXPECT_EQ(counted.calls(), 5u);
    // d(threshold - x0)/dx = (-1, 0, 0) via the FD default.
    EXPECT_NEAR(grads(0, 0), -1.0, 1e-6);
    EXPECT_NEAR(grads(0, 1), 0.0, 1e-6);
}

}  // namespace
