// Tests for the library extensions: line sampling and flow serialisation.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "estimators/line_sampling.hpp"
#include "flow/serialize.hpp"
#include "rng/normal.hpp"
#include "testcases/synthetic.hpp"

namespace {

using namespace nofis;

class HalfSpace final : public estimators::RareEventProblem {
public:
    HalfSpace(std::size_t dim, double t) : dim_(dim), t_(t) {}
    std::size_t dim() const noexcept override { return dim_; }
    double g(std::span<const double> x) const override { return t_ - x[0]; }
    double analytic() const { return 1.0 - rng::normal_cdf(t_); }

private:
    std::size_t dim_;
    double t_;
};

// ---------------------------------------------------------------------------
// Line sampling
// ---------------------------------------------------------------------------

TEST(LineSampling, ExactOnAffineLimitState) {
    // For a half-space every line crosses at the same distance, so line
    // sampling is (nearly) zero-variance even for P ~ 1e-9.
    HalfSpace prob(5, 6.0);  // P ≈ 9.9e-10
    estimators::LineSamplingEstimator ls(
        {.num_lines = 60, .pilot_samples = 200, .pilot_sigma = 3.0});
    rng::Engine eng(1);
    const auto res = ls.estimate(prob, eng);
    ASSERT_FALSE(res.failed);
    EXPECT_LT(estimators::log_error(res.p_hat, prob.analytic()), 0.05);
    // Budget: pilot + ~evals-per-line * lines.
    EXPECT_LT(res.calls, 200u + 60u * 12u + 1u);
}

TEST(LineSampling, AccurateOnLeafDespiteCurvature) {
    // The Leaf region is two discs; lines through the located disc solve
    // exactly, and the missed twin biases by at most ~ln 2.
    testcases::LeafCase leaf;
    estimators::LineSamplingEstimator ls(
        {.num_lines = 150, .pilot_samples = 400, .pilot_sigma = 2.5});
    double mean = 0.0;
    for (int r = 0; r < 3; ++r) {
        rng::Engine eng(10 + r);
        const auto res = ls.estimate(leaf, eng);
        mean += res.p_hat;
    }
    mean /= 3.0;
    EXPECT_LT(estimators::log_error(mean, leaf.golden_pr()), 1.2);
}

TEST(LineSampling, FailsGracefullyWhenRegionUnreachable) {
    HalfSpace prob(3, 50.0);
    estimators::LineSamplingEstimator ls(
        {.num_lines = 20, .pilot_samples = 50, .pilot_sigma = 2.0,
         .c_max = 8.0});
    rng::Engine eng(2);
    const auto res = ls.estimate(prob, eng);
    EXPECT_TRUE(res.failed || res.p_hat < 1e-12);
}

// ---------------------------------------------------------------------------
// Flow serialisation
// ---------------------------------------------------------------------------

flow::CouplingStack make_trained_stack(flow::CouplingKind kind,
                                       bool actnorm) {
    flow::StackConfig cfg;
    cfg.dim = 3;
    cfg.num_blocks = 2;
    cfg.layers_per_block = 4;
    cfg.hidden = {10};
    cfg.coupling = kind;
    cfg.use_actnorm = actnorm;
    rng::Engine eng(3);
    flow::CouplingStack stack(cfg, eng);
    rng::Engine weights(4);
    for (auto& p : stack.params())
        for (double& v : p.mutable_value().flat())
            v = 0.2 * rng::standard_normal(weights);
    return stack;
}

class SerializeVariant
    : public ::testing::TestWithParam<std::tuple<flow::CouplingKind, bool>> {
};

TEST_P(SerializeVariant, RoundTripPreservesDensitiesExactly) {
    const auto [kind, actnorm] = GetParam();
    const auto original = make_trained_stack(kind, actnorm);

    std::stringstream buffer;
    flow::save_stack(original, buffer);
    const auto loaded = flow::load_stack(buffer);

    EXPECT_EQ(loaded.dim(), original.dim());
    EXPECT_EQ(loaded.num_blocks(), original.num_blocks());

    rng::Engine probe(5);
    const auto x = rng::standard_normal_matrix(probe, 20, 3);
    const auto lp_orig = original.log_prob(x, 2);
    const auto lp_load = loaded.log_prob(x, 2);
    for (std::size_t r = 0; r < 20; ++r)
        EXPECT_DOUBLE_EQ(lp_orig[r], lp_load[r]);
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, SerializeVariant,
    ::testing::Combine(::testing::Values(flow::CouplingKind::kAffine,
                                         flow::CouplingKind::kAdditive,
                                         flow::CouplingKind::kRqs),
                       ::testing::Bool()));

TEST(Serialize, RqsRoundTripIsBitwiseStable) {
    // save → load → save must reproduce the file byte for byte, including
    // the spline header fields (bins, full-precision tail bound).
    flow::StackConfig cfg;
    cfg.dim = 3;
    cfg.num_blocks = 2;
    cfg.layers_per_block = 2;
    cfg.hidden = {8};
    cfg.coupling = flow::CouplingKind::kRqs;
    cfg.rqs_bins = 5;
    cfg.rqs_tail = 2.5;
    rng::Engine eng(8);
    flow::CouplingStack stack(cfg, eng);
    rng::Engine weights(9);
    for (auto& p : stack.params())
        for (double& v : p.mutable_value().flat())
            v = 0.2 * rng::standard_normal(weights);

    std::stringstream first;
    flow::save_stack(stack, first);
    const auto loaded = flow::load_stack(first);
    EXPECT_EQ(loaded.config().rqs_bins, 5u);
    EXPECT_EQ(loaded.config().rqs_tail, 2.5);
    std::stringstream second;
    flow::save_stack(loaded, second);
    EXPECT_EQ(first.str(), second.str());
}

TEST(Serialize, NonRqsFilesCarryNoSplineFields) {
    // The rqs header fields ride only on the "rqs" tag: an affine stack
    // saves byte-identically whatever the (ignored) spline knobs say, so
    // pre-rqs readers and files are unaffected by this release.
    auto cfg_of = [](std::size_t bins, double tail) {
        flow::StackConfig cfg;
        cfg.dim = 3;
        cfg.num_blocks = 1;
        cfg.layers_per_block = 2;
        cfg.hidden = {6};
        cfg.coupling = flow::CouplingKind::kAffine;
        cfg.rqs_bins = bins;
        cfg.rqs_tail = tail;
        return cfg;
    };
    rng::Engine e1(10);
    rng::Engine e2(10);
    const flow::CouplingStack a(cfg_of(8, 3.0), e1);
    const flow::CouplingStack b(cfg_of(31, 0.125), e2);
    std::stringstream sa;
    std::stringstream sb;
    flow::save_stack(a, sa);
    flow::save_stack(b, sb);
    EXPECT_EQ(sa.str(), sb.str());
    EXPECT_EQ(sa.str().find("rqs"), std::string::npos);
}

TEST(Serialize, RqsHeaderIsValidated) {
    // Zero bins, absurd bins, non-finite/negative tail, truncated spline
    // fields: each must fail with the structured error, never construct.
    const char* bad[] = {
        "nofisflow-v1\n2 1 2 2.0 rqs 0 0 3.0\n1 4\n",
        "nofisflow-v1\n2 1 2 2.0 rqs 0 999 3.0\n1 4\n",
        "nofisflow-v1\n2 1 2 2.0 rqs 0 8 -1.0\n1 4\n",
        "nofisflow-v1\n2 1 2 2.0 rqs 0 8 nan\n1 4\n",
        "nofisflow-v1\n2 1 2 2.0 rqs 0\n",
    };
    for (const char* text : bad) {
        std::istringstream is(text);
        EXPECT_THROW(flow::load_stack(is), std::runtime_error) << text;
    }
}

TEST(Serialize, SamplingMatchesAfterRoundTrip) {
    const auto original =
        make_trained_stack(flow::CouplingKind::kAffine, false);
    std::stringstream buffer;
    flow::save_stack(original, buffer);
    const auto loaded = flow::load_stack(buffer);
    rng::Engine a(6);
    rng::Engine b(6);
    const auto sa = original.sample(a, 10, 2);
    const auto sb = loaded.sample(b, 10, 2);
    EXPECT_LT(linalg::max_abs_diff(sa.z, sb.z), 1e-15);
}

TEST(Serialize, RejectsCorruptedInput) {
    std::stringstream bad("not-a-flow 1 2 3");
    EXPECT_THROW(flow::load_stack(bad), std::runtime_error);

    const auto original =
        make_trained_stack(flow::CouplingKind::kAffine, false);
    std::stringstream buffer;
    flow::save_stack(original, buffer);
    std::string text = buffer.str();
    std::stringstream truncated(text.substr(0, text.size() / 2));
    EXPECT_THROW(flow::load_stack(truncated), std::runtime_error);
}

TEST(Serialize, FileRoundTrip) {
    const auto original =
        make_trained_stack(flow::CouplingKind::kAdditive, true);
    const std::string path = ::testing::TempDir() + "/stack.nofisflow";
    flow::save_stack(original, path);
    const auto loaded = flow::load_stack(path);
    rng::Engine probe(7);
    const auto x = rng::standard_normal_matrix(probe, 5, 3);
    const auto lp_orig = original.log_prob(x, 2);
    const auto lp_load = loaded.log_prob(x, 2);
    for (std::size_t r = 0; r < 5; ++r)
        EXPECT_DOUBLE_EQ(lp_orig[r], lp_load[r]);
}

}  // namespace
