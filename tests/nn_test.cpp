#include <gtest/gtest.h>

#include <cmath>

#include "autodiff/gradcheck.hpp"
#include "nn/loss.hpp"
#include "nn/mlp.hpp"
#include "nn/optimizer.hpp"
#include "nn/trainer.hpp"
#include "rng/normal.hpp"

namespace {

using namespace nofis;
using autodiff::Var;
using linalg::Matrix;
using rng::Engine;

TEST(Linear, ShapesAndForward) {
    Engine eng(1);
    nn::Linear layer(3, 2, eng);
    EXPECT_EQ(layer.in_features(), 3u);
    EXPECT_EQ(layer.out_features(), 2u);
    Var x(Matrix(5, 3));
    Var y = layer.forward(x);
    EXPECT_EQ(y.rows(), 5u);
    EXPECT_EQ(y.cols(), 2u);
}

TEST(Linear, ZeroGainGivesZeroOutput) {
    Engine eng(2);
    nn::Linear layer(4, 4, eng, /*gain=*/0.0);
    Engine eng2(3);
    Var x(rng::standard_normal_matrix(eng2, 6, 4));
    EXPECT_DOUBLE_EQ(layer.forward(x).value().max_abs(), 0.0);
}

TEST(Linear, ForwardMatchesManualComputation) {
    Engine eng(4);
    nn::Linear layer(2, 1, eng);
    const Matrix w = layer.weight().value();
    layer.bias().mutable_value()(0, 0) = 0.5;
    Var x(Matrix{{1.0, 2.0}});
    const double expected = w(0, 0) * 1.0 + w(1, 0) * 2.0 + 0.5;
    EXPECT_NEAR(layer.forward(x).value()(0, 0), expected, 1e-12);
}

TEST(Mlp, LayerCountAndParams) {
    Engine eng(5);
    nn::MLP net({4, 8, 8, 2}, nn::Activation::kTanh, eng);
    EXPECT_EQ(net.in_features(), 4u);
    EXPECT_EQ(net.out_features(), 2u);
    EXPECT_EQ(net.params().size(), 6u);  // 3 layers x (W, b)
}

TEST(Mlp, RejectsTooFewSizes) {
    Engine eng(6);
    EXPECT_THROW(nn::MLP({4}, nn::Activation::kTanh, eng),
                 std::invalid_argument);
}

TEST(Mlp, GradCheckThroughWholeNetwork) {
    Engine eng(7);
    nn::MLP net({3, 6, 1}, nn::Activation::kTanh, eng);
    const Matrix x0 = rng::standard_normal_matrix(eng, 4, 3);
    const auto res = autodiff::grad_check(
        [&net](const Var& x) { return autodiff::sum(net.forward(x)); }, x0);
    EXPECT_TRUE(res.passed) << res.max_rel_error;
}

TEST(Mlp, SetTrainableFreezesParams) {
    Engine eng(8);
    nn::MLP net({2, 4, 1}, nn::Activation::kRelu, eng);
    net.set_trainable(false);
    for (const auto& p : net.params()) EXPECT_FALSE(p.requires_grad());
    net.set_trainable(true);
    for (const auto& p : net.params()) EXPECT_TRUE(p.requires_grad());
}

// --- losses ------------------------------------------------------------------

TEST(Loss, MseKnownValue) {
    Var pred(Matrix{{1.0, 2.0}});
    const Matrix target{{0.0, 4.0}};
    // ((1-0)^2 + (2-4)^2) / 2 = 2.5
    EXPECT_NEAR(nn::mse_loss(pred, target).value()(0, 0), 2.5, 1e-12);
}

TEST(Loss, MseGradCheck) {
    const Matrix target{{0.5, -1.0}, {2.0, 0.0}};
    const auto res = autodiff::grad_check(
        [&target](const Var& x) { return nn::mse_loss(x, target); },
        Matrix{{1.0, 0.0}, {0.3, -0.2}});
    EXPECT_TRUE(res.passed) << res.max_rel_error;
}

TEST(Loss, BceMatchesClosedForm) {
    // BCE with logits z and label y: -y log σ(z) - (1-y) log(1-σ(z)).
    const double z = 0.7;
    const double y = 1.0;
    Var logits(Matrix{{z}});
    const Matrix labels{{y}};
    const double sigma = 1.0 / (1.0 + std::exp(-z));
    const double expected = -std::log(sigma);
    EXPECT_NEAR(nn::bce_with_logits_loss(logits, labels).value()(0, 0),
                expected, 1e-10);
}

TEST(Loss, BceStableForExtremeLogits) {
    Var logits(Matrix{{40.0, -40.0}});
    const Matrix labels{{1.0, 0.0}};
    const double loss =
        nn::bce_with_logits_loss(logits, labels).value()(0, 0);
    EXPECT_TRUE(std::isfinite(loss));
    EXPECT_NEAR(loss, 0.0, 1e-10);
}

TEST(Loss, BceGradCheck) {
    const Matrix labels{{1.0, 0.0}, {0.0, 1.0}};
    const auto res = autodiff::grad_check(
        [&labels](const Var& z) { return nn::bce_with_logits_loss(z, labels); },
        Matrix{{0.3, -0.8}, {1.2, 0.1}});
    EXPECT_TRUE(res.passed) << res.max_rel_error;
}

// --- optimizers --------------------------------------------------------------

TEST(Optimizer, SgdConvergesOnQuadratic) {
    // min (w - 3)^2 via autodiff.
    Var w(Matrix{{0.0}}, true);
    nn::Sgd opt({w}, 0.1);
    for (int i = 0; i < 200; ++i) {
        opt.zero_grad();
        Var loss = autodiff::sum(
            autodiff::square_v(autodiff::add_const(w, -3.0)));
        loss.backward();
        opt.step();
    }
    EXPECT_NEAR(w.value()(0, 0), 3.0, 1e-6);
}

TEST(Optimizer, AdamConvergesOnIllConditionedQuadratic) {
    // min 100 (a-1)^2 + (b+2)^2.
    Var a(Matrix{{5.0}}, true);
    Var b(Matrix{{5.0}}, true);
    nn::Adam opt({a, b}, 0.1);
    for (int i = 0; i < 500; ++i) {
        opt.zero_grad();
        Var la = autodiff::scale(
            autodiff::square_v(autodiff::add_const(a, -1.0)), 100.0);
        Var lb = autodiff::square_v(autodiff::add_const(b, 2.0));
        autodiff::add(autodiff::sum(la), autodiff::sum(lb)).backward();
        opt.step();
    }
    EXPECT_NEAR(a.value()(0, 0), 1.0, 1e-3);
    EXPECT_NEAR(b.value()(0, 0), -2.0, 1e-3);
}

TEST(Optimizer, SkipsFrozenParameters) {
    Var w(Matrix{{1.0}}, true);
    Var frozen(Matrix{{1.0}}, true);
    nn::Adam opt({w, frozen}, 0.5);
    frozen.set_requires_grad(false);
    opt.zero_grad();
    autodiff::sum(autodiff::add(autodiff::square_v(w),
                                autodiff::square_v(frozen)))
        .backward();
    opt.step();
    EXPECT_NE(w.value()(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(frozen.value()(0, 0), 1.0);
}

TEST(Optimizer, ClipGradNormScalesDown) {
    Var w(Matrix{{0.0, 0.0}}, true);
    nn::Sgd opt({w}, 1.0);
    opt.zero_grad();
    // loss = 3 w0 + 4 w1 -> grad (3, 4), norm 5.
    autodiff::dot_constant(w, Matrix{{3.0, 4.0}}).backward();
    const double norm = opt.clip_grad_norm(1.0);
    EXPECT_NEAR(norm, 5.0, 1e-12);
    EXPECT_NEAR(w.grad()(0, 0), 0.6, 1e-12);
    EXPECT_NEAR(w.grad()(0, 1), 0.8, 1e-12);
}

// --- trainers ------------------------------------------------------------------

TEST(Trainer, RegressionLearnsLinearMap) {
    Engine eng(9);
    const Matrix x = rng::standard_normal_matrix(eng, 256, 2);
    Matrix y(256, 1);
    for (std::size_t r = 0; r < 256; ++r)
        y(r, 0) = 2.0 * x(r, 0) - x(r, 1) + 0.5;
    nn::MLP net({2, 16, 1}, nn::Activation::kTanh, eng);
    nn::TrainConfig cfg;
    cfg.epochs = 250;
    cfg.learning_rate = 5e-3;
    const auto hist = nn::fit_regression(net, x, y, cfg, eng);
    EXPECT_LT(hist.final_loss(), 0.02);
    EXPECT_GT(hist.epoch_loss.front(), hist.final_loss());
}

TEST(Trainer, ClassifierLearnsXor) {
    Engine eng(10);
    Matrix x(4, 2);
    Matrix labels(4, 1);
    const double pts[4][3] = {
        {-1, -1, 0}, {-1, 1, 1}, {1, -1, 1}, {1, 1, 0}};
    for (int i = 0; i < 4; ++i) {
        x(i, 0) = pts[i][0];
        x(i, 1) = pts[i][1];
        labels(i, 0) = pts[i][2];
    }
    nn::MLP net({2, 8, 8, 1}, nn::Activation::kTanh, eng);
    nn::TrainConfig cfg;
    cfg.epochs = 600;
    cfg.batch_size = 4;
    cfg.learning_rate = 1e-2;
    nn::fit_classifier(net, x, labels, cfg, eng);
    const Matrix pred = net.predict(x);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(pred(i, 0) > 0.0, labels(i, 0) > 0.5) << "point " << i;
}

}  // namespace
