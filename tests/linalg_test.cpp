#include <gtest/gtest.h>

#include <cmath>

#include "linalg/cholesky.hpp"
#include "linalg/least_squares.hpp"
#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"
#include "rng/engine.hpp"
#include "rng/normal.hpp"

namespace {

using nofis::linalg::Cholesky;
using nofis::linalg::ComplexLu;
using nofis::linalg::LuDecomposition;
using nofis::linalg::Matrix;

TEST(Matrix, ConstructionAndAccess) {
    Matrix m(2, 3);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    EXPECT_DOUBLE_EQ(m(1, 2), 0.0);

    Matrix lit{{1.0, 2.0}, {3.0, 4.0}};
    EXPECT_DOUBLE_EQ(lit(0, 1), 2.0);
    EXPECT_DOUBLE_EQ(lit(1, 0), 3.0);
    EXPECT_THROW(lit.at(2, 0), std::out_of_range);
    EXPECT_THROW(Matrix({{1.0}, {2.0, 3.0}}), std::invalid_argument);
}

TEST(Matrix, IdentityAndDiag) {
    const Matrix i3 = Matrix::identity(3);
    for (std::size_t r = 0; r < 3; ++r)
        for (std::size_t c = 0; c < 3; ++c)
            EXPECT_DOUBLE_EQ(i3(r, c), r == c ? 1.0 : 0.0);
    const double d[] = {2.0, 5.0};
    const Matrix dm = Matrix::diag(d);
    EXPECT_DOUBLE_EQ(dm(0, 0), 2.0);
    EXPECT_DOUBLE_EQ(dm(1, 1), 5.0);
    EXPECT_DOUBLE_EQ(dm(0, 1), 0.0);
}

TEST(Matrix, Arithmetic) {
    Matrix a{{1.0, 2.0}, {3.0, 4.0}};
    Matrix b{{5.0, 6.0}, {7.0, 8.0}};
    const Matrix sum = a + b;
    EXPECT_DOUBLE_EQ(sum(0, 0), 6.0);
    const Matrix diff = b - a;
    EXPECT_DOUBLE_EQ(diff(1, 1), 4.0);
    const Matrix scaled = a * 2.0;
    EXPECT_DOUBLE_EQ(scaled(1, 0), 6.0);
    const Matrix had = a.hadamard(b);
    EXPECT_DOUBLE_EQ(had(0, 1), 12.0);
    EXPECT_THROW(a + Matrix(3, 3), std::invalid_argument);
}

TEST(Matrix, Matmul) {
    Matrix a{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
    Matrix b{{7.0, 8.0}, {9.0, 10.0}, {11.0, 12.0}};
    const Matrix c = a.matmul(b);
    ASSERT_EQ(c.rows(), 2u);
    ASSERT_EQ(c.cols(), 2u);
    EXPECT_DOUBLE_EQ(c(0, 0), 58.0);
    EXPECT_DOUBLE_EQ(c(0, 1), 64.0);
    EXPECT_DOUBLE_EQ(c(1, 0), 139.0);
    EXPECT_DOUBLE_EQ(c(1, 1), 154.0);
    EXPECT_THROW(a.matmul(a), std::invalid_argument);
}

TEST(Matrix, MatmulIdentityProperty) {
    nofis::rng::Engine eng(1);
    for (std::size_t n : {1u, 3u, 7u}) {
        const Matrix a = nofis::rng::standard_normal_matrix(eng, n, n);
        const Matrix i = Matrix::identity(n);
        EXPECT_LT(nofis::linalg::max_abs_diff(a.matmul(i), a), 1e-14);
        EXPECT_LT(nofis::linalg::max_abs_diff(i.matmul(a), a), 1e-14);
    }
}

TEST(Matrix, TransposeInvolution) {
    nofis::rng::Engine eng(2);
    const Matrix a = nofis::rng::standard_normal_matrix(eng, 4, 7);
    EXPECT_EQ(a.transposed().transposed(), a);
}

TEST(Matrix, SliceAndConcat) {
    Matrix a{{1, 2, 3}, {4, 5, 6}};
    const Matrix c01 = a.cols_slice(0, 2);
    EXPECT_EQ(c01.cols(), 2u);
    EXPECT_DOUBLE_EQ(c01(1, 1), 5.0);
    const Matrix r1 = a.rows_slice(1, 2);
    EXPECT_EQ(r1.rows(), 1u);
    EXPECT_DOUBLE_EQ(r1(0, 2), 6.0);
    const Matrix h = c01.hcat(a.cols_slice(2, 3));
    EXPECT_EQ(h, a);
    const Matrix v = a.rows_slice(0, 1).vcat(r1);
    EXPECT_EQ(v, a);
}

TEST(Matrix, SelectScatterRoundTrip) {
    Matrix a{{1, 2, 3, 4}, {5, 6, 7, 8}};
    const std::size_t idx[] = {0, 2};
    const Matrix sel = a.select_cols(idx);
    EXPECT_DOUBLE_EQ(sel(1, 1), 7.0);
    Matrix b(2, 4);
    b.scatter_cols(idx, sel);
    EXPECT_DOUBLE_EQ(b(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(b(0, 2), 3.0);
    EXPECT_DOUBLE_EQ(b(0, 1), 0.0);
}

TEST(Matrix, Reductions) {
    Matrix a{{1, -2}, {3, 4}};
    EXPECT_DOUBLE_EQ(a.sum(), 6.0);
    EXPECT_DOUBLE_EQ(a.mean(), 1.5);
    EXPECT_DOUBLE_EQ(a.min(), -2.0);
    EXPECT_DOUBLE_EQ(a.max(), 4.0);
    EXPECT_DOUBLE_EQ(a.max_abs(), 4.0);
    EXPECT_DOUBLE_EQ(a.row_sums()(0, 0), -1.0);
    EXPECT_DOUBLE_EQ(a.col_sums()(0, 1), 2.0);
    EXPECT_DOUBLE_EQ(a.col_means()(0, 0), 2.0);
    EXPECT_NEAR(a.norm(), std::sqrt(30.0), 1e-12);
}

TEST(Matrix, AddRowBroadcast) {
    Matrix a{{1, 2}, {3, 4}};
    Matrix bias{{10, 20}};
    const Matrix out = a.add_row_broadcast(bias);
    EXPECT_DOUBLE_EQ(out(0, 0), 11.0);
    EXPECT_DOUBLE_EQ(out(1, 1), 24.0);
}

TEST(Matrix, AllFinite) {
    Matrix a{{1.0, 2.0}};
    EXPECT_TRUE(a.all_finite());
    a(0, 0) = std::nan("");
    EXPECT_FALSE(a.all_finite());
}

// --- LU -----------------------------------------------------------------

TEST(Lu, SolvesKnownSystem) {
    const Matrix a{{2.0, 1.0}, {1.0, 3.0}};
    const double b[] = {5.0, 10.0};
    const auto x = nofis::linalg::solve(a, b);
    EXPECT_NEAR(x[0], 1.0, 1e-12);
    EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Lu, Determinant) {
    const Matrix a{{2.0, 0.0}, {0.0, 3.0}};
    EXPECT_NEAR(LuDecomposition(a).determinant(), 6.0, 1e-12);
    // Row swap flips the sign.
    const Matrix p{{0.0, 1.0}, {1.0, 0.0}};
    EXPECT_NEAR(LuDecomposition(p).determinant(), -1.0, 1e-12);
    EXPECT_NEAR(LuDecomposition(a).log_abs_determinant(), std::log(6.0),
                1e-12);
}

TEST(Lu, RejectsSingular) {
    const Matrix s{{1.0, 2.0}, {2.0, 4.0}};
    EXPECT_THROW(LuDecomposition{s}, std::runtime_error);
    EXPECT_THROW(LuDecomposition{Matrix(2, 3)}, std::invalid_argument);
}

class LuProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LuProperty, SolveResidualIsTiny) {
    const std::size_t n = GetParam();
    nofis::rng::Engine eng(100 + n);
    const Matrix a = nofis::rng::standard_normal_matrix(eng, n, n) +
                     Matrix::identity(n) * (2.0 * std::sqrt(n));
    std::vector<double> b(n);
    nofis::rng::fill_standard_normal(eng, b);
    const auto x = LuDecomposition(a).solve(b);
    for (std::size_t r = 0; r < n; ++r) {
        double resid = -b[r];
        for (std::size_t c = 0; c < n; ++c) resid += a(r, c) * x[c];
        EXPECT_NEAR(resid, 0.0, 1e-9) << "row " << r << " n=" << n;
    }
}

TEST_P(LuProperty, InverseTimesMatrixIsIdentity) {
    const std::size_t n = GetParam();
    nofis::rng::Engine eng(200 + n);
    const Matrix a = nofis::rng::standard_normal_matrix(eng, n, n) +
                     Matrix::identity(n) * (2.0 * std::sqrt(n));
    const Matrix inv = nofis::linalg::inverse(a);
    EXPECT_LT(nofis::linalg::max_abs_diff(a.matmul(inv), Matrix::identity(n)),
              1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(ComplexLu, SolvesKnownComplexSystem) {
    using C = std::complex<double>;
    // [1+j, 2; 0, 3j] x = [3+j, 6j] -> x = [?, 2]
    std::vector<C> a = {C(1, 1), C(2, 0), C(0, 0), C(0, 3)};
    ComplexLu lu(a, 2);
    std::vector<C> b = {C(3, 1), C(0, 6)};
    const auto x = lu.solve(b);
    EXPECT_NEAR(std::abs(x[1] - C(2, 0)), 0.0, 1e-12);
    // Check residual of first equation: (1+j)x0 + 2*2 = 3+j.
    const C r0 = C(1, 1) * x[0] + C(2, 0) * x[1] - C(3, 1);
    EXPECT_NEAR(std::abs(r0), 0.0, 1e-12);
}

// --- Cholesky -------------------------------------------------------------

TEST(Cholesky, FactorsSpdMatrix) {
    const Matrix a{{4.0, 2.0}, {2.0, 3.0}};
    Cholesky ch(a);
    const Matrix& l = ch.lower();
    // L Lᵀ == A
    const Matrix rec = l.matmul(l.transposed());
    EXPECT_LT(nofis::linalg::max_abs_diff(rec, a), 1e-12);
    EXPECT_NEAR(ch.log_determinant(), std::log(8.0), 1e-12);
}

TEST(Cholesky, RejectsIndefinite) {
    const Matrix a{{1.0, 2.0}, {2.0, 1.0}};  // eigenvalues 3, -1
    EXPECT_THROW(Cholesky{a}, std::runtime_error);
}

TEST(Cholesky, SolveMatchesLu) {
    nofis::rng::Engine eng(7);
    const Matrix g = nofis::rng::standard_normal_matrix(eng, 5, 5);
    const Matrix spd = g.matmul(g.transposed()) + Matrix::identity(5) * 5.0;
    std::vector<double> b(5);
    nofis::rng::fill_standard_normal(eng, b);
    const auto x1 = Cholesky(spd).solve(b);
    const auto x2 = nofis::linalg::solve(spd, b);
    for (std::size_t i = 0; i < 5; ++i) EXPECT_NEAR(x1[i], x2[i], 1e-9);
}

// --- Least squares -----------------------------------------------------------

TEST(LeastSquares, RecoversExactLinearModel) {
    // y = 2 + 3 t over-determined, noiseless.
    Matrix a(10, 2);
    std::vector<double> y(10);
    for (std::size_t i = 0; i < 10; ++i) {
        const double t = static_cast<double>(i);
        a(i, 0) = 1.0;
        a(i, 1) = t;
        y[i] = 2.0 + 3.0 * t;
    }
    const auto coef = nofis::linalg::least_squares(a, y);
    EXPECT_NEAR(coef[0], 2.0, 1e-8);
    EXPECT_NEAR(coef[1], 3.0, 1e-8);
}

TEST(LeastSquares, WeightsDownweightOutliers) {
    Matrix a(4, 1);
    std::vector<double> y = {1.0, 1.0, 1.0, 100.0};
    std::vector<double> w = {1.0, 1.0, 1.0, 1e-9};
    for (std::size_t i = 0; i < 4; ++i) a(i, 0) = 1.0;
    const auto coef = nofis::linalg::weighted_least_squares(a, y, w);
    EXPECT_NEAR(coef[0], 1.0, 1e-4);
}

TEST(LeastSquares, RejectsUnderdetermined) {
    Matrix a(1, 2, 1.0);
    std::vector<double> y = {1.0};
    EXPECT_THROW(nofis::linalg::least_squares(a, y), std::invalid_argument);
}

TEST(LinalgHelpers, DotAndNorm) {
    const double a[] = {1.0, 2.0, 3.0};
    const double b[] = {4.0, 5.0, 6.0};
    EXPECT_DOUBLE_EQ(nofis::linalg::dot(a, b), 32.0);
    EXPECT_NEAR(nofis::linalg::norm2(a), std::sqrt(14.0), 1e-12);
}

}  // namespace
