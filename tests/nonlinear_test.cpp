#include <gtest/gtest.h>

#include <cmath>

#include "circuit/nonlinear.hpp"
#include "circuit/sram.hpp"
#include "rng/normal.hpp"

namespace {

using namespace nofis::circuit;

// ---------------------------------------------------------------------------
// Newton solver with diodes
// ---------------------------------------------------------------------------

TEST(Nonlinear, DiodeResistorOperatingPoint) {
    // 5 V -> 1 kΩ -> diode to ground. KCL: (5 - v)/R = Is(e^{v/vt} - 1).
    Netlist net(2);
    net.add(VoltageSource{1, 0, 5.0});
    net.add(Resistor{1, 2, 1000.0});
    NonlinearCircuit circuit(std::move(net));
    circuit.add(Diode{2, 0});

    const auto sol = circuit.solve_dc();
    const double v = circuit.voltage(sol, 2);
    // Forward drop in the usual 0.5-0.8 V band, and KCL must balance.
    EXPECT_GT(v, 0.5);
    EXPECT_LT(v, 0.8);
    const double i_r = (5.0 - v) / 1000.0;
    const double i_d = 1e-14 * (std::exp(v / 0.02585) - 1.0);
    EXPECT_NEAR(i_r, i_d, 1e-6 * i_r + 1e-12);
}

TEST(Nonlinear, DiodeReverseBiasBlocks) {
    Netlist net(2);
    net.add(VoltageSource{1, 0, -5.0});
    net.add(Resistor{1, 2, 1000.0});
    NonlinearCircuit circuit(std::move(net));
    circuit.add(Diode{2, 0});
    const auto sol = circuit.solve_dc();
    // Nearly the full negative rail appears at the diode (no current).
    EXPECT_NEAR(circuit.voltage(sol, 2), -5.0, 1e-3);
}

// ---------------------------------------------------------------------------
// MOSFET model regions
// ---------------------------------------------------------------------------

TEST(Nonlinear, NmosRegionsAndSquareLaw) {
    // Drain driven by ideal source: direct region checks.
    Netlist net(2);
    net.add(VoltageSource{1, 0, 1.5});  // drain
    net.add(VoltageSource{2, 0, 1.0});  // gate
    NonlinearCircuit circuit(std::move(net));
    // NMOS: d=1, g=2, s=0; beta=1 mA/V², VT=0.4, no CLM.
    circuit.add(Mosfet{1, 2, 0, 1e-3, 0.4, 0.0, false});
    const auto sol = circuit.solve_dc();

    const auto op = circuit.mosfet_op(sol, 0);
    // Vov = 0.6, VDS = 1.5 > Vov -> saturation, I = beta/2 * Vov².
    EXPECT_EQ(op.region, MosfetOp::Region::kSaturation);
    EXPECT_NEAR(op.id, 0.5e-3 * 0.36, 1e-9);
}

TEST(Nonlinear, NmosTriodeCurrent) {
    Netlist net(2);
    net.add(VoltageSource{1, 0, 0.2});  // VDS = 0.2 < Vov = 0.6
    net.add(VoltageSource{2, 0, 1.0});
    NonlinearCircuit circuit(std::move(net));
    circuit.add(Mosfet{1, 2, 0, 1e-3, 0.4, 0.0, false});
    const auto op = circuit.mosfet_op(circuit.solve_dc(), 0);
    EXPECT_EQ(op.region, MosfetOp::Region::kTriode);
    EXPECT_NEAR(op.id, 1e-3 * (0.6 * 0.2 - 0.5 * 0.04), 1e-9);
}

TEST(Nonlinear, CutoffCarriesNoCurrent) {
    Netlist net(2);
    net.add(VoltageSource{1, 0, 1.0});
    net.add(VoltageSource{2, 0, 0.2});  // below VT
    NonlinearCircuit circuit(std::move(net));
    circuit.add(Mosfet{1, 2, 0, 1e-3, 0.4, 0.0, false});
    const auto op = circuit.mosfet_op(circuit.solve_dc(), 0);
    EXPECT_EQ(op.region, MosfetOp::Region::kCutoff);
    EXPECT_DOUBLE_EQ(op.id, 0.0);
}

TEST(Nonlinear, PmosMirrorsNmosBehaviour) {
    // PMOS source at VDD, gate at 0, drain loaded by resistor to ground.
    Netlist net(3);
    net.add(VoltageSource{1, 0, 1.8});  // VDD
    net.add(VoltageSource{2, 0, 0.0});  // gate hard low -> PMOS on
    net.add(Resistor{3, 0, 100.0});
    NonlinearCircuit circuit(std::move(net));
    circuit.add(Mosfet{3, 2, 1, 2e-3, 0.4, 0.0, true});
    const auto sol = circuit.solve_dc();
    // Current flows into the resistor: positive drain-node voltage.
    EXPECT_GT(circuit.voltage(sol, 3), 0.05);
    EXPECT_LT(circuit.voltage(sol, 3), 1.8);
}

TEST(Nonlinear, CmosInverterVtcEndpointsAndMonotonicity) {
    // Sweep a CMOS inverter input; output must fall monotonically from
    // ~VDD to ~0.
    const auto inverter_out = [](double vin) {
        Netlist net(3);
        net.add(VoltageSource{1, 0, vin});
        net.add(VoltageSource{3, 0, 1.0});
        NonlinearCircuit circuit(std::move(net));
        circuit.add(Mosfet{2, 1, 0, 200e-6, 0.3, 0.05, false});
        circuit.add(Mosfet{2, 1, 3, 80e-6, 0.3, 0.05, true});
        std::vector<double> guess = {vin, 0.5, 1.0};
        return circuit.voltage(circuit.solve_dc({}, guess), 2);
    };
    double prev = inverter_out(0.0);
    EXPECT_GT(prev, 0.98);
    for (double vin = 0.1; vin <= 1.001; vin += 0.1) {
        const double v = inverter_out(vin);
        EXPECT_LE(v, prev + 1e-9) << "VTC not monotone at vin=" << vin;
        prev = v;
    }
    EXPECT_LT(prev, 0.05);
}

TEST(Nonlinear, ThrowsWhenUnconverged) {
    Netlist net(2);
    net.add(VoltageSource{1, 0, 5.0});
    net.add(Resistor{1, 2, 1000.0});
    NonlinearCircuit circuit(std::move(net));
    circuit.add(Diode{2, 0});
    NonlinearCircuit::SolveOptions opts;
    opts.max_iterations = 1;  // cannot possibly converge
    EXPECT_THROW(circuit.solve_dc(opts), std::runtime_error);
}

// ---------------------------------------------------------------------------
// SRAM read-SNM model
// ---------------------------------------------------------------------------

TEST(Sram, NominalSnmInPhysicalBand) {
    SramCellModel cell;
    const double snm =
        cell.static_noise_margin(std::vector<double>(6, 0.0));
    // Read SNM of a healthy 1 V cell: tens to a couple hundred mV.
    EXPECT_GT(snm, 0.10);
    EXPECT_LT(snm, 0.35);
}

TEST(Sram, ReadVtcIsMonotoneWithCorrectEndpoints) {
    SramCellModel cell;
    std::vector<double> grid(21);
    for (std::size_t i = 0; i < grid.size(); ++i)
        grid[i] = static_cast<double>(i) / 20.0;
    const auto vtc = cell.read_vtc(grid, 0.0, 0.0, 0.0);
    EXPECT_GT(vtc.front(), 0.95);  // storing '1' with input low
    // Read-disturb: the low level is pulled up by the access device, but
    // must stay well below the switching threshold.
    EXPECT_GT(vtc.back(), 0.02);
    EXPECT_LT(vtc.back(), 0.4);
    for (std::size_t i = 1; i < vtc.size(); ++i)
        EXPECT_LE(vtc[i], vtc[i - 1] + 1e-9);
}

TEST(Sram, MismatchDegradesSnm) {
    SramCellModel cell;
    const double nominal =
        cell.static_noise_margin(std::vector<double>(6, 0.0));
    // Weaken the left pull-down and strengthen the left access device —
    // the classic read-upset corner.
    std::vector<double> bad = {2.5, 0.0, -2.5, 0.0, 0.0, 0.0};
    EXPECT_LT(cell.static_noise_margin(bad), nominal);
}

TEST(Sram, SnmIsSymmetricUnderCellMirror) {
    // Swapping the left and right half-cells leaves the SNM unchanged.
    SramCellModel cell;
    nofis::rng::Engine eng(1);
    std::vector<double> x(6);
    nofis::rng::fill_standard_normal(eng, x);
    std::vector<double> mirrored = {x[3], x[4], x[5], x[0], x[1], x[2]};
    // Exact in the continuum; the VTC grid discretisation breaks the
    // reflection symmetry at the sub-mV level.
    EXPECT_NEAR(cell.static_noise_margin(x),
                cell.static_noise_margin(mirrored), 2e-3);
}

TEST(Sram, RejectsWrongDimension) {
    SramCellModel cell;
    EXPECT_THROW(cell.static_noise_margin(std::vector<double>(5)),
                 std::invalid_argument);
}

}  // namespace
