#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <string>

#include "core/levels.hpp"
#include "core/nofis.hpp"
#include "linalg/solver_error.hpp"
#include "rng/normal.hpp"
#include "testcases/synthetic.hpp"

namespace {

using namespace nofis;
using core::LevelSchedule;
using core::NofisConfig;
using core::NofisEstimator;

/// Cheap 2-D analytic problem for end-to-end tests: Ω = {x0 >= t},
/// P = 1 - Φ(t).
class HalfSpace2D final : public estimators::RareEventProblem {
public:
    explicit HalfSpace2D(double t) : t_(t) {}
    std::size_t dim() const noexcept override { return 2; }
    double g(std::span<const double> x) const override { return t_ - x[0]; }
    double g_grad(std::span<const double> x,
                  std::span<double> grad) const override {
        grad[0] = -1.0;
        grad[1] = 0.0;
        return t_ - x[0];
    }
    double analytic() const { return 1.0 - rng::normal_cdf(t_); }

private:
    double t_;
};

NofisConfig small_config() {
    NofisConfig cfg;
    cfg.layers_per_block = 4;
    cfg.hidden = {16, 16};
    cfg.epochs = 60;
    cfg.samples_per_epoch = 40;
    cfg.learning_rate = 7e-3;
    cfg.lr_decay = 0.99;
    cfg.tau = 10.0;
    cfg.n_is = 800;
    return cfg;
}

// ---------------------------------------------------------------------------
// LevelSchedule
// ---------------------------------------------------------------------------

TEST(LevelSchedule, ValidatesMonotoneDecreasingEndingAtZero) {
    EXPECT_NO_THROW(LevelSchedule::manual({3.0, 1.0, 0.0}));
    EXPECT_THROW(LevelSchedule::manual({}), std::invalid_argument);
    EXPECT_THROW(LevelSchedule::manual({1.0, 2.0, 0.0}),
                 std::invalid_argument);
    EXPECT_THROW(LevelSchedule::manual({2.0, 2.0, 0.0}),
                 std::invalid_argument);
    EXPECT_THROW(LevelSchedule::manual({2.0, 1.0}), std::invalid_argument);
    const auto ls = LevelSchedule::manual({5.0, 2.0, 0.0});
    EXPECT_EQ(ls.num_levels(), 3u);
    EXPECT_DOUBLE_EQ(ls.level(1), 2.0);
}

TEST(AutoLevels, ProducesValidScheduleAndChargesCalls) {
    HalfSpace2D prob(3.0);
    estimators::CountedProblem counted(prob);
    rng::Engine eng(1);
    core::AutoLevelConfig cfg;
    cfg.num_levels = 4;
    cfg.pilot_samples = 300;
    const auto ls = core::auto_levels(counted, eng, cfg);
    EXPECT_EQ(counted.calls(), 300u);
    ASSERT_EQ(ls.num_levels(), 4u);
    EXPECT_DOUBLE_EQ(ls.level(3), 0.0);
    for (std::size_t m = 1; m < 4; ++m) EXPECT_LT(ls.level(m), ls.level(m - 1));
    // a1 should approximate the 10% quantile of g = 3 - x0, i.e. 3 - q90(x0)
    // ≈ 3 - 1.28 ≈ 1.72.
    EXPECT_NEAR(ls.level(0), 1.72, 0.4);
}

TEST(AutoLevels, DegeneratesToSingleLevelForCommonEvents) {
    HalfSpace2D prob(-1.0);  // P ≈ 0.84: not rare
    estimators::CountedProblem counted(prob);
    rng::Engine eng(2);
    const auto ls = core::auto_levels(counted, eng, {});
    EXPECT_EQ(ls.num_levels(), 1u);
}

/// Half-space whose g is non-finite on part of the pilot cloud — models a
/// guarded problem handing back NaN (propagate policy) or inf (clamp).
class PartiallyNonFinite final : public estimators::RareEventProblem {
public:
    /// Returns NaN whenever x1 > cut, else the HalfSpace2D response.
    explicit PartiallyNonFinite(double t, double cut) : t_(t), cut_(cut) {}
    std::size_t dim() const noexcept override { return 2; }
    double g(std::span<const double> x) const override {
        if (x[1] > cut_) return std::numeric_limits<double>::quiet_NaN();
        return t_ - x[0];
    }

private:
    double t_;
    double cut_;
};

TEST(AutoLevels, StripsNonFinitePilotValuesBeforeQuantile) {
    // ~7% of pilots go NaN; before the fix these sorted unpredictably (NaN
    // breaks strict-weak-ordering) and silently shifted the quantile.
    PartiallyNonFinite prob(3.0, 1.5);
    estimators::CountedProblem counted(prob);
    rng::Engine eng(1);
    core::AutoLevelConfig cfg;
    cfg.num_levels = 4;
    cfg.pilot_samples = 300;
    const auto ls = core::auto_levels(counted, eng, cfg);
    ASSERT_EQ(ls.num_levels(), 4u);
    for (std::size_t m = 0; m < 4; ++m)
        EXPECT_TRUE(std::isfinite(ls.level(m))) << "level " << m;
    for (std::size_t m = 1; m < 4; ++m) EXPECT_LT(ls.level(m), ls.level(m - 1));
    // The finite-subset quantile still lands near the analytic value.
    EXPECT_NEAR(ls.level(0), 1.72, 0.4);
}

/// Returns the call number (1, 2, 3, ...) regardless of input: after
/// sorting, an n-sample pilot's g-values are exactly {1, ..., n}, so the
/// quantile rank the implementation picks is directly observable.
class CallCounterProblem final : public estimators::RareEventProblem {
public:
    std::size_t dim() const noexcept override { return 2; }
    double g(std::span<const double>) const override {
        return static_cast<double>(
            calls_.fetch_add(1, std::memory_order_relaxed) + 1);
    }

private:
    mutable std::atomic<std::size_t> calls_{0};
};

TEST(AutoLevels, QuantileUsesNearestRankNotFloor) {
    // Regression for the off-by-one: with n = 11 sorted values {1..11} and
    // q = 0.95, the nearest-rank index is llround(0.95 * 10) = 10 (value
    // 11). Floor truncation picked index 9 (value 10) — a systematically
    // optimistic first level on small pilots.
    CallCounterProblem prob;
    estimators::CountedProblem counted(prob);
    rng::Engine eng(3);
    core::AutoLevelConfig cfg;
    cfg.num_levels = 3;
    cfg.pilot_samples = 11;
    cfg.head_quantile = 0.95;
    const auto ls = core::auto_levels(counted, eng, cfg);
    EXPECT_DOUBLE_EQ(ls.level(0), 11.0);
}

TEST(AutoLevels, ThrowsStructuredErrorWhenTooFewPilotsAreFinite) {
    PartiallyNonFinite prob(3.0, -100.0);  // every pilot g-value is NaN
    estimators::CountedProblem counted(prob);
    rng::Engine eng(1);
    core::AutoLevelConfig cfg;
    cfg.num_levels = 4;
    cfg.pilot_samples = 200;
    try {
        core::auto_levels(counted, eng, cfg);
        FAIL() << "expected BadInputError";
    } catch (const BadInputError& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("auto_levels"), std::string::npos);
        EXPECT_NE(msg.find("finite"), std::string::npos);
    }
}

// ---------------------------------------------------------------------------
// NOFIS end-to-end
// ---------------------------------------------------------------------------

TEST(Nofis, CallAccountingIsExact) {
    HalfSpace2D prob(2.5);
    NofisConfig cfg = small_config();
    NofisEstimator est(cfg, LevelSchedule::manual({1.5, 0.7, 0.0}));
    rng::Engine eng(3);
    const auto res = est.estimate(prob, eng);
    EXPECT_EQ(res.calls,
              3u * cfg.epochs * cfg.samples_per_epoch + cfg.n_is);
}

TEST(Nofis, EstimatesModeratelyRareHalfSpace) {
    HalfSpace2D prob(3.2);  // P ≈ 6.9e-4
    NofisEstimator est(small_config(),
                       LevelSchedule::manual({1.8, 0.9, 0.0}));
    double mean_err = 0.0;
    const int reps = 3;
    for (int r = 0; r < reps; ++r) {
        rng::Engine eng(100 + r);
        const auto res = est.estimate(prob, eng);
        ASSERT_FALSE(res.failed);
        mean_err += estimators::log_error(res.p_hat, prob.analytic());
    }
    EXPECT_LT(mean_err / reps, 0.5);
}

TEST(Nofis, RunExposesDiagnosticsAndTrainedFlow) {
    HalfSpace2D prob(2.8);
    NofisConfig cfg = small_config();
    cfg.epochs = 30;
    NofisEstimator est(cfg, LevelSchedule::manual({1.5, 0.6, 0.0}));
    rng::Engine eng(4);
    const auto run = est.run(prob, eng);

    ASSERT_EQ(run.stages.size(), 3u);
    for (std::size_t m = 0; m < 3; ++m) {
        EXPECT_EQ(run.stages[m].stage, m + 1);
        EXPECT_EQ(run.stages[m].epoch_loss.size(), cfg.epochs);
    }
    // The last stage should put a solid fraction of samples inside Ω.
    EXPECT_GT(run.stages.back().inside_fraction, 0.2);
    ASSERT_NE(run.flow, nullptr);
    EXPECT_EQ(run.flow->num_blocks(), 3u);
    EXPECT_GT(run.is_diag.hits, 0u);
    EXPECT_GT(run.is_diag.effective_sample_size, 1.0);
}

TEST(Nofis, TrainingReducesStageLoss) {
    HalfSpace2D prob(2.8);
    NofisConfig cfg = small_config();
    NofisEstimator est(cfg, LevelSchedule::manual({1.5, 0.6, 0.0}));
    rng::Engine eng(5);
    const auto run = est.run(prob, eng);
    for (const auto& s : run.stages) {
        // Compare the mean of the first and last thirds to be robust to
        // stochastic per-epoch noise.
        const std::size_t third = s.epoch_loss.size() / 3;
        double head = 0.0, tail = 0.0;
        for (std::size_t i = 0; i < third; ++i) {
            head += s.epoch_loss[i];
            tail += s.epoch_loss[s.epoch_loss.size() - 1 - i];
        }
        EXPECT_LT(tail, head) << "stage " << s.stage << " did not improve";
    }
}

TEST(Nofis, ImportanceEstimateReusesTrainedFlow) {
    HalfSpace2D prob(3.0);
    NofisEstimator est(small_config(),
                       LevelSchedule::manual({1.7, 0.8, 0.0}));
    rng::Engine eng(6);
    auto run = est.run(prob, eng);
    // Fresh estimates from the same flow, growing N_IS (Figure 4's sweep).
    core::IsDiagnostics diag;
    const auto res = NofisEstimator::importance_estimate(
        *run.flow, prob, eng, 4000, &diag);
    EXPECT_EQ(res.calls, 4000u);
    EXPECT_LT(estimators::log_error(res.p_hat, prob.analytic()), 0.6);
    EXPECT_GT(diag.effective_sample_size, 10.0);
}

TEST(Nofis, DefensiveMixtureStaysCalibrated) {
    // The defensive proposal must leave the estimator consistent (it only
    // reshapes the sampling distribution, densities stay exact).
    HalfSpace2D prob(3.0);
    NofisConfig cfg = small_config();
    cfg.defensive_weight = 0.4;
    cfg.defensive_sigma = 1.5;
    NofisEstimator est(cfg, LevelSchedule::manual({1.7, 0.8, 0.0}));
    double mean = 0.0;
    const int reps = 3;
    for (int r = 0; r < reps; ++r) {
        rng::Engine eng(200 + r);
        mean += est.estimate(prob, eng).p_hat;
    }
    EXPECT_LT(estimators::log_error(mean / reps, prob.analytic()), 0.5);
}

TEST(Nofis, NoFreezeAblationRuns) {
    HalfSpace2D prob(2.5);
    NofisConfig cfg = small_config();
    cfg.freeze_previous = false;
    cfg.epochs = 25;
    NofisEstimator est(cfg, LevelSchedule::manual({1.4, 0.6, 0.0}));
    rng::Engine eng(7);
    const auto res = est.estimate(prob, eng);
    EXPECT_FALSE(res.failed);
    EXPECT_GT(res.p_hat, 0.0);
}

TEST(Nofis, FreezeLeavesEarlierBlocksUntouched) {
    HalfSpace2D prob(2.5);
    NofisConfig cfg = small_config();
    cfg.epochs = 15;
    NofisEstimator est(cfg, LevelSchedule::manual({1.2, 0.0}));
    rng::Engine eng(8);
    const auto run = est.run(prob, eng);
    // After the full run blocks before the last are frozen; parameters of
    // block 0 must still require no grad, block 1 must be trainable.
    for (const auto& p : run.flow->block_params(0))
        EXPECT_FALSE(p.requires_grad());
    for (const auto& p : run.flow->block_params(1))
        EXPECT_TRUE(p.requires_grad());
}

TEST(Nofis, LeafEndToEndAtReducedBudget) {
    // A trimmed Leaf run (quarter budget) still lands within an order of
    // magnitude — the full-budget behaviour is covered by bench/table1.
    testcases::LeafCase leaf;
    NofisConfig cfg;
    cfg.epochs = 40;
    cfg.samples_per_epoch = 30;
    cfg.n_is = 1000;
    cfg.tau = 30.0;
    cfg.learning_rate = 7e-3;
    cfg.lr_decay = 0.99;
    NofisEstimator est(
        cfg, LevelSchedule::manual({40.0, 28.0, 18.0, 10.0, 4.0, 0.0}));
    rng::Engine eng(9);
    const auto res = est.estimate(leaf, eng);
    EXPECT_FALSE(res.failed);
    EXPECT_LT(estimators::log_error(res.p_hat, leaf.golden_pr()), 2.5);
}

TEST(Nofis, ReproducibleUnderSameSeed) {
    HalfSpace2D prob(2.5);
    NofisEstimator est(small_config(), LevelSchedule::manual({1.2, 0.0}));
    rng::Engine a(11);
    rng::Engine b(11);
    EXPECT_DOUBLE_EQ(est.estimate(prob, a).p_hat,
                     est.estimate(prob, b).p_hat);
}

}  // namespace
