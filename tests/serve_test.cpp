// Tests for the batched inference-serving subsystem (src/serve) and the
// flow::stack_info introspection it is built on.
//
// The load-bearing case is ServeDeterminism.BitwiseAcrossBatchQueueAndThreads:
// for a fixed per-request seed, sample / log_prob / estimate responses must
// be byte-identical across micro-batch row budgets {1, 7, 64}, submission
// orders, and thread counts {1, 8} — the serving extension of the repo's
// training determinism contract (DESIGN.md §8.2, §10).

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <map>
#include <thread>
#include <vector>

#include "flow/serialize.hpp"
#include "flow/stack_info.hpp"
#include "parallel/thread_pool.hpp"
#include "rng/engine.hpp"
#include "serve/model_registry.hpp"
#include "serve/protocol.hpp"
#include "serve/scheduler.hpp"
#include "serve/server.hpp"
#include "serve/tcp_client.hpp"

namespace {

using namespace nofis;
using serve::ErrorCode;
using serve::Op;
using serve::Request;
using serve::Response;

flow::StackConfig small_config(std::size_t dim) {
    flow::StackConfig cfg;
    cfg.dim = dim;
    cfg.num_blocks = 2;
    cfg.layers_per_block = 2;
    cfg.hidden = {8};
    return cfg;
}

flow::CouplingStack make_stack(std::size_t dim, std::uint64_t seed) {
    rng::Engine eng(seed);
    return flow::CouplingStack(small_config(dim), eng);
}

/// A stack whose transforms are NOT the identity. Fresh inits zero the
/// coupling nets' output layers, so two stacks from different seeds still
/// sample identical bytes — a test that must observe a weight swap in the
/// served output needs genuinely different transforms.
flow::CouplingStack make_perturbed_stack(std::size_t dim,
                                         std::uint64_t seed) {
    auto stack = make_stack(dim, seed);
    auto snap = flow::snapshot_params(stack);
    for (std::size_t i = 0; i < snap.size(); ++i)
        for (std::size_t r = 0; r < snap[i].rows(); ++r)
            for (std::size_t c = 0; c < snap[i].cols(); ++c)
                snap[i](r, c) += 0.01 * static_cast<double>(
                                            (i + r + c + seed % 13) % 7 + 1);
    flow::restore_params(stack, snap);
    return stack;
}

/// Restores the default pool size when a test tweaks --threads.
struct PoolGuard {
    ~PoolGuard() { parallel::set_num_threads(0); }
};

/// Temp model directory with two saved stacks: "toy3" (dim 3) and "toy2"
/// (dim 2 — matches the Leaf test case for estimate requests).
class ServeFixture : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = ::testing::TempDir() + "nofis_serve_" +
               std::to_string(::getpid()) + "_" +
               ::testing::UnitTest::GetInstance()->current_test_info()->name();
        std::filesystem::create_directories(dir_);
        flow::save_stack(make_stack(3, 101), dir_ + "/toy3.nofisflow");
        flow::save_stack(make_stack(2, 202), dir_ + "/toy2.nofisflow");
    }
    void TearDown() override {
        std::error_code ec;
        std::filesystem::remove_all(dir_, ec);
    }

    std::string dir_;
};

// ---------------------------------------------------------------------------
// flow::stack_info
// ---------------------------------------------------------------------------

TEST(StackInfo, MatchesConfigAndParameterTally) {
    const auto stack = make_stack(3, 7);
    const auto info = flow::stack_info(stack);
    EXPECT_EQ(info.dim, 3u);
    EXPECT_EQ(info.num_blocks, 2u);
    EXPECT_EQ(info.layers_per_block, 2u);
    EXPECT_EQ(info.coupling, flow::CouplingKind::kAffine);
    EXPECT_FALSE(info.use_actnorm);
    EXPECT_EQ(info.hidden, std::vector<std::size_t>{8});

    std::size_t tensors = 0;
    std::size_t values = 0;
    for (const auto& p : stack.params()) {
        ++tensors;
        values += p.value().rows() * p.value().cols();
    }
    EXPECT_EQ(info.param_tensors, tensors);
    EXPECT_EQ(info.param_values, values);
    EXPECT_GT(info.param_values, 0u);
    EXPECT_EQ(flow::coupling_kind_name(info.coupling), "affine");
}

TEST_F(ServeFixture, StackInfoFromFileMatchesInMemory) {
    const auto from_file = flow::stack_info(dir_ + "/toy3.nofisflow");
    const auto in_memory = flow::stack_info(make_stack(3, 101));
    EXPECT_EQ(from_file.dim, in_memory.dim);
    EXPECT_EQ(from_file.param_tensors, in_memory.param_tensors);
    EXPECT_EQ(from_file.param_values, in_memory.param_values);
}

TEST(StackInfo, MissingFileThrows) {
    EXPECT_THROW(flow::stack_info("/nonexistent/nope.nofisflow"),
                 std::runtime_error);
}

// ---------------------------------------------------------------------------
// Wire protocol
// ---------------------------------------------------------------------------

TEST(ServeProtocol, JsonRoundTripsSeedsExactly) {
    const std::uint64_t big = 0xfedcba9876543210ULL;
    serve::Json doc = serve::Json::object();
    doc.set("seed", serve::Json::number_u64(big));
    doc.set("x", serve::Json::number(0.1));
    const auto parsed = serve::Json::parse(doc.encode());
    EXPECT_EQ(parsed.find("seed")->as_u64(), big);
    EXPECT_EQ(parsed.find("x")->as_double(), 0.1);
}

TEST(ServeProtocol, RequestDecodeValidates) {
    const auto req = Request::decode(
        R"({"id":9,"op":"sample","model":"toy3","seed":42,"n":5})");
    EXPECT_EQ(req.id, 9u);
    EXPECT_EQ(req.op, Op::kSample);
    EXPECT_EQ(req.model, "toy3");
    EXPECT_EQ(req.seed, 42u);
    EXPECT_EQ(req.n, 5u);

    const auto expect_bad = [](const char* line) {
        try {
            Request::decode(line);
            FAIL() << "expected ServeError for: " << line;
        } catch (const serve::ServeError& e) {
            EXPECT_EQ(e.code(), ErrorCode::kBadRequest);
        }
    };
    expect_bad("not json");
    expect_bad(R"({"op":"no_such_op"})");
    expect_bad(R"({"op":"sample"})");                      // missing model
    expect_bad(R"({"op":"sample","model":"m","n":0})");    // zero rows
    expect_bad(R"({"op":"estimate","model":"m"})");        // missing case
    expect_bad(R"({"op":"log_prob","model":"m","x":[[1],[1,2]]})");  // ragged
}

TEST(ServeProtocol, RequestEncodeDecodeRoundTrip) {
    Request req;
    req.id = 3;
    req.op = Op::kLogProb;
    req.model = "toy3";
    req.x = linalg::Matrix(2, 3);
    req.x(0, 0) = 0.25;
    req.x(1, 2) = -1.5;
    const auto back = Request::decode(req.encode());
    EXPECT_EQ(back.op, Op::kLogProb);
    EXPECT_EQ(back.x.rows(), 2u);
    EXPECT_EQ(back.x.cols(), 3u);
    EXPECT_EQ(back.x(0, 0), 0.25);
    EXPECT_EQ(back.x(1, 2), -1.5);
}

// ---------------------------------------------------------------------------
// ModelRegistry
// ---------------------------------------------------------------------------

TEST_F(ServeFixture, RegistrySharesOneInstancePerName) {
    serve::ModelRegistry registry(dir_);
    const auto a = registry.get("toy3");
    const auto b = registry.get("toy3");
    EXPECT_EQ(a.get(), b.get());
    EXPECT_EQ(a->info.dim, 3u);
    EXPECT_EQ(registry.resident(), std::vector<std::string>{"toy3"});
    const auto avail = registry.available();
    EXPECT_EQ(avail, (std::vector<std::string>{"toy2", "toy3"}));
}

TEST_F(ServeFixture, RegistryRejectsUnknownAndTraversalNames) {
    serve::ModelRegistry registry(dir_);
    try {
        registry.get("no_such_model");
        FAIL() << "expected kUnknownModel";
    } catch (const serve::ServeError& e) {
        EXPECT_EQ(e.code(), ErrorCode::kUnknownModel);
    }
    for (const char* evil : {"../toy3", "a/b", "", ".hidden"}) {
        try {
            registry.get(evil);
            FAIL() << "expected kBadRequest for '" << evil << "'";
        } catch (const serve::ServeError& e) {
            EXPECT_EQ(e.code(), ErrorCode::kBadRequest);
        }
    }
}

TEST_F(ServeFixture, RegistryReloadSwapsEvictDrops) {
    serve::ModelRegistry registry(dir_);
    const auto original = registry.get("toy3");
    // Overwrite the file with a differently-initialised stack: get() keeps
    // serving the resident instance until an explicit reload.
    flow::save_stack(make_stack(3, 999), dir_ + "/toy3.nofisflow");
    EXPECT_EQ(registry.get("toy3").get(), original.get());

    const auto reloaded = registry.reload("toy3");
    EXPECT_NE(reloaded.get(), original.get());
    const auto before = flow::snapshot_params(original->stack);
    const auto after = flow::snapshot_params(reloaded->stack);
    ASSERT_EQ(before.size(), after.size());
    bool any_differs = false;
    for (std::size_t i = 0; i < before.size(); ++i)
        for (std::size_t j = 0; j < before[i].flat().size(); ++j)
            any_differs |= before[i].flat()[j] != after[i].flat()[j];
    EXPECT_TRUE(any_differs);
    // The old shared instance stays alive and intact for in-flight holders.
    EXPECT_EQ(original->info.dim, 3u);

    EXPECT_TRUE(registry.evict("toy3"));
    EXPECT_FALSE(registry.evict("toy3"));
    EXPECT_TRUE(registry.resident().empty());
}

TEST_F(ServeFixture, ReloadAndEvictKeepHeldInstancesBitwiseIntact) {
    serve::ModelRegistry registry(dir_);
    const auto held = registry.get("toy3");
    const auto sample_with = [](const serve::Model& m) {
        rng::Engine eng(42);
        return m.stack.sample(eng, 3, m.stack.num_blocks());
    };
    const auto before = sample_with(*held);

    // Swap the on-disk weights and reload, then evict: the held pre-reload
    // instance — the one an in-flight batch would have captured — must keep
    // producing its original bytes.
    flow::save_stack(make_perturbed_stack(3, 999), dir_ + "/toy3.nofisflow");
    const auto swapped = registry.reload("toy3");
    ASSERT_NE(swapped.get(), held.get());
    EXPECT_TRUE(registry.evict("toy3"));

    const auto after = sample_with(*held);
    ASSERT_EQ(after.z.rows(), before.z.rows());
    for (std::size_t r = 0; r < before.z.rows(); ++r) {
        for (std::size_t c = 0; c < before.z.cols(); ++c)
            EXPECT_EQ(after.z(r, c), before.z(r, c));
        EXPECT_EQ(after.log_q[r], before.log_q[r]);
    }

    // And the post-reload instance really is different weights.
    const auto other = sample_with(*swapped);
    bool any_differs = false;
    for (std::size_t r = 0; r < before.z.rows(); ++r)
        for (std::size_t c = 0; c < before.z.cols(); ++c)
            any_differs |= other.z(r, c) != before.z(r, c);
    EXPECT_TRUE(any_differs);
}

TEST_F(ServeFixture, ReloadEvictChurnUnderTrafficStaysStructured) {
    serve::ModelRegistry registry(dir_);
    serve::SchedulerConfig cfg;
    cfg.max_wait_us = 50;
    serve::BatchScheduler scheduler(registry, cfg);

    // Clients hammer samples while the main thread swaps weights under
    // them: every response must stay ok — in-flight batches ride their held
    // shared_ptr, new batches pick up whatever generation is resident.
    std::atomic<bool> stop{false};
    std::vector<std::thread> clients;
    for (std::size_t t = 0; t < 3; ++t)
        clients.emplace_back([&, t] {
            serve::Client client(scheduler);
            std::uint64_t seed = 100 * (t + 1);
            while (!stop.load(std::memory_order_relaxed)) {
                Request req;
                req.op = Op::kSample;
                req.model = "toy3";
                req.seed = seed++;
                req.n = 2;
                const Response res = client.call(req);
                EXPECT_TRUE(res.ok) << res.error_message;
            }
        });
    for (int iter = 0; iter < 20; ++iter) {
        flow::save_stack(make_stack(3, 1000 + iter),
                         dir_ + "/toy3.nofisflow");
        registry.reload("toy3");
        if (iter % 5 == 4) registry.evict("toy3");
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    stop.store(true, std::memory_order_relaxed);
    for (auto& th : clients) th.join();
}

// ---------------------------------------------------------------------------
// Scheduler: determinism (the acceptance criterion)
// ---------------------------------------------------------------------------

std::vector<Request> determinism_workload() {
    std::vector<Request> reqs;
    std::uint64_t id = 1;
    for (std::uint64_t seed : {11u, 22u, 33u, 44u}) {
        Request r;
        r.id = id++;
        r.op = Op::kSample;
        r.model = "toy3";
        r.seed = seed;
        r.n = 1 + static_cast<std::size_t>(seed % 5);
        reqs.push_back(std::move(r));
    }
    for (std::uint64_t seed : {55u, 66u}) {
        Request r;
        r.id = id++;
        r.op = Op::kSample;
        r.model = "toy2";
        r.seed = seed;
        r.n = 3;
        reqs.push_back(std::move(r));
    }
    for (double shift : {0.0, 0.5, -1.25}) {
        Request r;
        r.id = id++;
        r.op = Op::kLogProb;
        r.model = "toy3";
        r.x = linalg::Matrix(2, 3);
        for (std::size_t c = 0; c < 3; ++c) {
            r.x(0, c) = 0.3 * static_cast<double>(c) + shift;
            r.x(1, c) = -0.2 + shift;
        }
        reqs.push_back(std::move(r));
    }
    for (std::uint64_t seed : {7u, 8u}) {
        Request r;
        r.id = id++;
        r.op = Op::kEstimate;
        r.model = "toy2";
        r.case_name = "Leaf";
        r.seed = seed;
        r.n = 500;
        reqs.push_back(std::move(r));
    }
    return reqs;
}

/// Runs the workload in `order` through a fresh scheduler and returns
/// encoded responses keyed by request id. Pausing first guarantees the
/// whole submission lands in the queue before any batch is assembled, so
/// the row budget alone dictates the batching.
std::map<std::uint64_t, std::string> run_workload(
    const std::string& dir, std::size_t max_batch_rows, std::size_t threads,
    const std::vector<std::size_t>& order) {
    parallel::set_num_threads(threads);
    serve::ModelRegistry registry(dir);
    serve::SchedulerConfig cfg;
    cfg.max_batch_rows = max_batch_rows;
    cfg.max_wait_us = 50;
    serve::BatchScheduler scheduler(registry, cfg);
    serve::Client client(scheduler);

    const auto reqs = determinism_workload();
    scheduler.pause();
    std::vector<std::future<Response>> futures(reqs.size());
    for (const std::size_t i : order) futures[i] = client.async(reqs[i]);
    scheduler.resume();

    std::map<std::uint64_t, std::string> encoded;
    for (std::size_t i = 0; i < reqs.size(); ++i) {
        const Response res = futures[i].get();
        EXPECT_TRUE(res.ok) << "id " << reqs[i].id << ": "
                            << res.error_message;
        encoded[reqs[i].id] = res.encode();
    }
    return encoded;
}

TEST_F(ServeFixture, DeterminismBitwiseAcrossBatchQueueAndThreads) {
    const PoolGuard guard;
    const std::size_t n = determinism_workload().size();
    std::vector<std::size_t> natural(n);
    for (std::size_t i = 0; i < n; ++i) natural[i] = i;
    std::vector<std::size_t> reversed(natural.rbegin(), natural.rend());
    std::vector<std::size_t> interleaved;
    for (std::size_t i = 0; i < n; ++i)
        interleaved.push_back(i % 2 == 0 ? i / 2 : n - 1 - i / 2);

    const auto baseline = run_workload(dir_, 1, 1, natural);
    ASSERT_EQ(baseline.size(), n);

    for (const std::size_t batch_rows : {1u, 7u, 64u}) {
        for (const std::size_t threads : {1u, 8u}) {
            for (const auto* order : {&natural, &reversed, &interleaved}) {
                const auto got =
                    run_workload(dir_, batch_rows, threads, *order);
                EXPECT_EQ(got, baseline)
                    << "batch_rows=" << batch_rows << " threads=" << threads;
            }
        }
    }
}

TEST_F(ServeFixture, BatchedSampleMatchesStandaloneStackSample) {
    const PoolGuard guard;
    serve::ModelRegistry registry(dir_);
    serve::SchedulerConfig cfg;
    cfg.max_batch_rows = 64;
    serve::BatchScheduler scheduler(registry, cfg);
    serve::Client client(scheduler);

    // Reference: the exact draw CouplingStack::sample produces stand-alone.
    const auto stack = flow::load_stack(dir_ + "/toy3.nofisflow");
    rng::Engine eng(42);
    const auto expected = stack.sample(eng, 4, stack.num_blocks());

    Request req;
    req.id = 1;
    req.op = Op::kSample;
    req.model = "toy3";
    req.seed = 42;
    req.n = 4;
    const Response res = client.call(req);
    ASSERT_TRUE(res.ok) << res.error_message;
    const serve::Json* z = res.result.find("z");
    const serve::Json* log_q = res.result.find("log_q");
    ASSERT_NE(z, nullptr);
    ASSERT_NE(log_q, nullptr);
    ASSERT_EQ(z->size(), 4u);
    for (std::size_t r = 0; r < 4; ++r) {
        for (std::size_t c = 0; c < 3; ++c)
            EXPECT_EQ(z->at(r).at(c).as_double(), expected.z(r, c));
        EXPECT_EQ(log_q->at(r).as_double(), expected.log_q[r]);
    }
}

// ---------------------------------------------------------------------------
// Scheduler: backpressure, deadlines, structured errors, shutdown
// ---------------------------------------------------------------------------

TEST_F(ServeFixture, BoundedQueueRejectsWithQueueFull) {
    serve::ModelRegistry registry(dir_);
    serve::SchedulerConfig cfg;
    cfg.max_queue = 2;
    serve::BatchScheduler scheduler(registry, cfg);
    serve::Client client(scheduler);

    scheduler.pause();
    Request ping;
    ping.op = Op::kPing;
    ping.id = 1;
    auto f1 = client.async(ping);
    ping.id = 2;
    auto f2 = client.async(ping);
    ping.id = 3;
    auto f3 = client.async(ping);  // over capacity: rejected immediately
    const Response rejected = f3.get();
    EXPECT_FALSE(rejected.ok);
    EXPECT_EQ(rejected.error_code, ErrorCode::kQueueFull);
    scheduler.resume();
    EXPECT_TRUE(f1.get().ok);
    EXPECT_TRUE(f2.get().ok);
}

TEST_F(ServeFixture, ExpiredDeadlineSurfacesStructuredError) {
    serve::ModelRegistry registry(dir_);
    serve::BatchScheduler scheduler(registry, serve::SchedulerConfig{});
    serve::Client client(scheduler);

    scheduler.pause();
    Request req;
    req.op = Op::kSample;
    req.model = "toy3";
    req.seed = 1;
    req.n = 1;
    req.id = 1;
    req.timeout_us = 1000;  // 1 ms, guaranteed to expire while paused
    auto expired = client.async(req);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    req.id = 2;
    req.timeout_us = 60'000'000;  // 60 s, cannot expire
    auto alive = client.async(req);
    scheduler.resume();

    const Response r1 = expired.get();
    EXPECT_FALSE(r1.ok);
    EXPECT_EQ(r1.error_code, ErrorCode::kDeadlineExceeded);
    EXPECT_TRUE(alive.get().ok);
}

TEST_F(ServeFixture, PerRequestErrorsAreStructured) {
    serve::ModelRegistry registry(dir_);
    serve::BatchScheduler scheduler(registry, serve::SchedulerConfig{});
    serve::Client client(scheduler);

    Request req;
    req.op = Op::kSample;
    req.model = "ghost";
    req.n = 1;
    EXPECT_EQ(client.call(req).error_code, ErrorCode::kUnknownModel);

    req = Request{};
    req.op = Op::kLogProb;
    req.model = "toy3";
    req.x = linalg::Matrix(1, 2);  // model dim is 3
    EXPECT_EQ(client.call(req).error_code, ErrorCode::kDimMismatch);

    req = Request{};
    req.op = Op::kEstimate;
    req.model = "toy2";
    req.case_name = "NoSuchCase";
    req.n = 10;
    EXPECT_EQ(client.call(req).error_code, ErrorCode::kUnknownCase);

    req.case_name = "Cube";  // dim 6 != model dim 2
    EXPECT_EQ(client.call(req).error_code, ErrorCode::kDimMismatch);
}

TEST_F(ServeFixture, StoppedSchedulerRejectsNewWork) {
    serve::ModelRegistry registry(dir_);
    serve::BatchScheduler scheduler(registry, serve::SchedulerConfig{});
    serve::Client client(scheduler);
    Request ping;
    ping.op = Op::kPing;
    EXPECT_TRUE(client.call(ping).ok);
    scheduler.stop();
    const Response res = client.call(ping);
    EXPECT_FALSE(res.ok);
    EXPECT_EQ(res.error_code, ErrorCode::kShuttingDown);
}

// ---------------------------------------------------------------------------
// Concurrent serialization (TSan-covered satellite)
// ---------------------------------------------------------------------------

TEST_F(ServeFixture, ServeRaceParallelLoadStackIsRaceFreeAndIdentical) {
    const std::string path = dir_ + "/toy3.nofisflow";
    constexpr std::size_t kThreads = 8;
    std::vector<flow::ParamSnapshot> snapshots(kThreads);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t)
        threads.emplace_back([&, t] {
            snapshots[t] = flow::snapshot_params(flow::load_stack(path));
        });
    for (auto& th : threads) th.join();
    for (std::size_t t = 1; t < kThreads; ++t) {
        ASSERT_EQ(snapshots[t].size(), snapshots[0].size());
        for (std::size_t i = 0; i < snapshots[0].size(); ++i) {
            const auto a = snapshots[0][i].flat();
            const auto b = snapshots[t][i].flat();
            ASSERT_EQ(a.size(), b.size());
            for (std::size_t j = 0; j < a.size(); ++j)
                ASSERT_EQ(a[j], b[j]) << "thread " << t << " tensor " << i;
        }
    }
}

TEST_F(ServeFixture, ServeRaceSaveLoadRoundTripUnderActiveServer) {
    serve::ModelRegistry registry(dir_);
    serve::BatchScheduler scheduler(registry, serve::SchedulerConfig{});

    std::atomic<bool> stop{false};
    std::vector<std::thread> clients;
    for (std::size_t t = 0; t < 4; ++t)
        clients.emplace_back([&, t] {
            serve::Client client(scheduler);
            std::uint64_t seed = 1000 * (t + 1);
            while (!stop.load(std::memory_order_relaxed)) {
                Request req;
                req.op = Op::kSample;
                req.model = "toy3";
                req.seed = seed++;
                req.n = 4;
                const Response res = client.call(req);
                ASSERT_TRUE(res.ok) << res.error_message;
            }
        });

    // Save/load round-trips on a *different* file while the server batches
    // sample traffic on the shared pool.
    const auto original = make_stack(5, 314);
    const auto expected = flow::snapshot_params(original);
    const std::string path = dir_ + "/roundtrip.nofisflow";
    for (int iter = 0; iter < 10; ++iter) {
        flow::save_stack(original, path);
        const auto loaded = flow::load_stack(path);
        const auto got = flow::snapshot_params(loaded);
        ASSERT_EQ(got.size(), expected.size());
        for (std::size_t i = 0; i < got.size(); ++i) {
            const auto a = expected[i].flat();
            const auto b = got[i].flat();
            for (std::size_t j = 0; j < a.size(); ++j)
                ASSERT_EQ(a[j], b[j]);
        }
    }
    stop.store(true, std::memory_order_relaxed);
    for (auto& th : clients) th.join();
}

// ---------------------------------------------------------------------------
// TCP server / client
// ---------------------------------------------------------------------------

TEST_F(ServeFixture, ServeTcpEndToEndPipelinedAndCleanShutdown) {
    serve::ServerConfig cfg;
    cfg.model_dir = dir_;
    cfg.port = 0;  // ephemeral
    serve::Server server(cfg);
    ASSERT_GT(server.port(), 0);

    serve::TcpClient client("127.0.0.1", server.port());
    Request ping;
    ping.op = Op::kPing;
    ping.id = 7;
    const Response pong = client.call(ping);
    EXPECT_TRUE(pong.ok);
    EXPECT_EQ(pong.id, 7u);

    // Pipelined lines come back in order with matching ids.
    std::vector<std::string> lines;
    for (std::uint64_t id = 1; id <= 5; ++id) {
        Request req;
        req.id = id;
        req.op = Op::kSample;
        req.model = "toy3";
        req.seed = id;
        req.n = 2;
        lines.push_back(req.encode());
    }
    const auto responses = client.pipeline_raw(lines);
    ASSERT_EQ(responses.size(), 5u);
    for (std::uint64_t id = 1; id <= 5; ++id) {
        const Response res = Response::decode(responses[id - 1]);
        EXPECT_TRUE(res.ok);
        EXPECT_EQ(res.id, id);
    }

    // A malformed line yields a structured bad_request, not a dropped
    // connection.
    const Response bad = Response::decode(client.call_raw("this is not json"));
    EXPECT_FALSE(bad.ok);
    EXPECT_EQ(bad.error_code, ErrorCode::kBadRequest);

    Request down;
    down.op = Op::kShutdown;
    const Response ack = client.call(down);
    EXPECT_TRUE(ack.ok);
    server.wait();  // returns because the shutdown op signalled it
    server.shutdown();
}

TEST_F(ServeFixture, ServerSurvivesClientDisconnectMidRequest) {
    serve::ServerConfig cfg;
    cfg.model_dir = dir_;
    cfg.port = 0;
    cfg.backlog = 1;  // the tuned-down option must still serve fine
    serve::Server server(cfg);
    ASSERT_GT(server.port(), 0);

    // Clients that send a request and vanish without reading the response:
    // the connection teardown must not take the server (or other
    // connections) with it.
    for (int i = 0; i < 3; ++i) {
        serve::TcpClient client("127.0.0.1", server.port());
        Request req;
        req.id = 1;
        req.op = Op::kSample;
        req.model = "toy3";
        req.seed = static_cast<std::uint64_t>(i);
        req.n = 32;
        client.send_line(req.encode());
        // scope exit closes the socket with the response undelivered
    }

    serve::TcpClient fresh("127.0.0.1", server.port());
    Request ping;
    ping.op = Op::kPing;
    ping.id = 9;
    const Response pong = fresh.call(ping);
    EXPECT_TRUE(pong.ok);
    EXPECT_EQ(pong.id, 9u);
    server.shutdown();
}

}  // namespace
