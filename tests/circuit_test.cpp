#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "circuit/ac.hpp"
#include "circuit/charge_pump.hpp"
#include "circuit/dc.hpp"
#include "circuit/opamp.hpp"

namespace {

using namespace nofis::circuit;

// ---------------------------------------------------------------------------
// DC analysis against hand-solved circuits
// ---------------------------------------------------------------------------

TEST(Dc, VoltageDivider) {
    // 10V across R1=1k, R2=3k -> v(mid) = 7.5V.
    Netlist net(2);
    net.add(VoltageSource{1, 0, 10.0});
    net.add(Resistor{1, 2, 1000.0});
    net.add(Resistor{2, 0, 3000.0});
    DcSolution dc(net);
    EXPECT_NEAR(dc.voltage(2), 7.5, 1e-12);
    EXPECT_NEAR(dc.voltage(1), 10.0, 1e-12);
    // Source current: 10V / 4k = 2.5 mA flowing out of the + terminal,
    // i.e. -2.5 mA into it under MNA sign convention.
    EXPECT_NEAR(dc.source_current(0), -2.5e-3, 1e-12);
}

TEST(Dc, CurrentSourceIntoResistor) {
    // 1 mA into 2k to ground -> 2 V.
    Netlist net(1);
    net.add(CurrentSource{0, 1, 1e-3});
    net.add(Resistor{1, 0, 2000.0});
    EXPECT_NEAR(dc_voltage(net, 1), 2.0, 1e-12);
}

TEST(Dc, VccsInvertingAmplifier) {
    // v1 = 1 V drives gm = 1 mS into 10k load: v2 = -gm*R*v1 = -10 V.
    Netlist net(2);
    net.add(VoltageSource{1, 0, 1.0});
    net.add(Vccs{2, 0, 1, 0, 1e-3});
    net.add(Resistor{2, 0, 10000.0});
    EXPECT_NEAR(dc_voltage(net, 2), -10.0, 1e-10);
}

TEST(Dc, WheatstoneBridgeBalanced) {
    // Balanced bridge: equal arms -> zero differential voltage.
    Netlist net(3);
    net.add(VoltageSource{1, 0, 5.0});
    net.add(Resistor{1, 2, 1000.0});
    net.add(Resistor{2, 0, 1000.0});
    net.add(Resistor{1, 3, 2000.0});
    net.add(Resistor{3, 0, 2000.0});
    DcSolution dc(net);
    EXPECT_NEAR(dc.voltage(2) - dc.voltage(3), 0.0, 1e-12);
}

TEST(Dc, SuperpositionOfTwoSources) {
    // Two current sources into a resistor network obey superposition.
    Netlist both(2);
    both.add(CurrentSource{0, 1, 1e-3});
    both.add(CurrentSource{0, 2, 2e-3});
    both.add(Resistor{1, 2, 1000.0});
    both.add(Resistor{2, 0, 1000.0});
    both.add(Resistor{1, 0, 1000.0});
    const double v_both = dc_voltage(both, 1);

    Netlist only1(2);
    only1.add(CurrentSource{0, 1, 1e-3});
    only1.add(Resistor{1, 2, 1000.0});
    only1.add(Resistor{2, 0, 1000.0});
    only1.add(Resistor{1, 0, 1000.0});
    Netlist only2(2);
    only2.add(CurrentSource{0, 2, 2e-3});
    only2.add(Resistor{1, 2, 1000.0});
    only2.add(Resistor{2, 0, 1000.0});
    only2.add(Resistor{1, 0, 1000.0});
    EXPECT_NEAR(v_both, dc_voltage(only1, 1) + dc_voltage(only2, 1), 1e-12);
}

TEST(Netlist, ValidatesElements) {
    Netlist net(2);
    EXPECT_THROW(net.add(Resistor{1, 5, 100.0}), std::invalid_argument);
    EXPECT_THROW(net.add(Resistor{1, 0, -5.0}), std::invalid_argument);
    EXPECT_THROW(net.add(Capacitor{1, 0, 0.0}), std::invalid_argument);
    EXPECT_NO_THROW(net.add(Resistor{1, 2, 100.0}));
}

// ---------------------------------------------------------------------------
// AC analysis
// ---------------------------------------------------------------------------

TEST(Ac, RcLowPassPole) {
    // R = 1k, C = 1uF -> f_3dB = 1/(2π RC) ≈ 159.15 Hz.
    Netlist net(2);
    net.add(VoltageSource{1, 0, 1.0});
    net.add(Resistor{1, 2, 1000.0});
    net.add(Capacitor{2, 0, 1e-6});
    const double f3db = 1.0 / (2.0 * std::numbers::pi * 1e-3);
    // At the pole the magnitude is 1/sqrt(2).
    AcSolution at_pole(net, f3db);
    EXPECT_NEAR(std::abs(at_pole.voltage(2)), 1.0 / std::sqrt(2.0), 1e-6);
    // Far below the pole it passes, far above it rolls off ~20 dB/decade.
    AcSolution low(net, f3db / 100.0);
    EXPECT_NEAR(std::abs(low.voltage(2)), 1.0, 1e-4);
    AcSolution high(net, f3db * 100.0);
    EXPECT_NEAR(std::abs(high.voltage(2)), 0.01, 1e-3);
}

TEST(Ac, PhaseOfRcAtPoleIsMinus45Degrees) {
    Netlist net(2);
    net.add(VoltageSource{1, 0, 1.0});
    net.add(Resistor{1, 2, 1000.0});
    net.add(Capacitor{2, 0, 1e-6});
    const double f3db = 1.0 / (2.0 * std::numbers::pi * 1e-3);
    const auto v = AcSolution(net, f3db).voltage(2);
    EXPECT_NEAR(std::arg(v) * 180.0 / std::numbers::pi, -45.0, 0.01);
}

TEST(Ac, DcLimitMatchesDcAnalysis) {
    Netlist net(2);
    net.add(VoltageSource{1, 0, 2.0});
    net.add(Resistor{1, 2, 1000.0});
    net.add(Resistor{2, 0, 1000.0});
    net.add(Capacitor{2, 0, 1e-9});
    AcSolution ac(net, 1e-3);  // essentially DC
    EXPECT_NEAR(std::abs(ac.voltage(2)), dc_voltage(net, 2), 1e-9);
}

TEST(Ac, MagnitudeSweepIsMonotoneForLowPass) {
    Netlist net(2);
    net.add(VoltageSource{1, 0, 1.0});
    net.add(Resistor{1, 2, 1000.0});
    net.add(Capacitor{2, 0, 1e-6});
    const double freqs[] = {10.0, 100.0, 1000.0, 10000.0};
    const auto mags = ac_magnitude_sweep(net, 2, freqs);
    for (std::size_t i = 1; i < mags.size(); ++i)
        EXPECT_LT(mags[i], mags[i - 1]);
}

// ---------------------------------------------------------------------------
// Opamp macromodel
// ---------------------------------------------------------------------------

TEST(Opamp, NominalGainNearDesignTarget) {
    OpampModel amp;
    const std::vector<double> nominal(5, 0.0);
    const double gain = amp.gain_db(nominal);
    // Designed around 81.4 dB (feedforward perturbs it slightly).
    EXPECT_NEAR(gain, 81.4, 0.5);
}

TEST(Opamp, GainIncreasesWithGmWidths) {
    OpampModel amp;
    std::vector<double> up = {1.0, 1.0, 1.0, 0.0, 0.0};
    std::vector<double> down = {-1.0, -1.0, -1.0, 0.0, 0.0};
    EXPECT_GT(amp.gain_db(up), amp.gain_db(down));
}

TEST(Opamp, GainDecreasesWithLoadConductanceWidths) {
    OpampModel amp;
    std::vector<double> up = {0.0, 0.0, 0.0, 1.0, 1.0};
    std::vector<double> down = {0.0, 0.0, 0.0, -1.0, -1.0};
    EXPECT_LT(amp.gain_db(up), amp.gain_db(down));
}

TEST(Opamp, GainRollsOffAtHighFrequency) {
    OpampModel::Params p;
    p.freq_hz = 10.0;
    OpampModel low(p);
    p.freq_hz = 1e6;
    OpampModel high(p);
    const std::vector<double> nominal(5, 0.0);
    EXPECT_LT(high.gain_db(nominal), low.gain_db(nominal) - 20.0);
}

TEST(Opamp, RejectsWrongDimension) {
    OpampModel amp;
    EXPECT_THROW(amp.gain_db(std::vector<double>(4)), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Charge pump behavioural model
// ---------------------------------------------------------------------------

TEST(ChargePump, NominalMismatchIsSmall) {
    ChargePumpModel cp;
    const std::vector<double> nominal(16, 0.0);
    // Only λ asymmetry remains at nominal; far below the 370 µA limit.
    EXPECT_LT(cp.mismatch_amps(nominal), 50e-6);
}

TEST(ChargePump, OutputVoltageNearMidRailNominally) {
    ChargePumpModel cp;
    const std::vector<double> nominal(16, 0.0);
    EXPECT_NEAR(cp.output_voltage(nominal), 0.9, 0.2);
}

TEST(ChargePump, KclHoldsAtSolvedPoint) {
    // Small perturbation keeps the output inside the rails, where the
    // bisection equilibrium makes |i_up - i_dn| equal the load current.
    // (Large imbalances clamp at a rail — the saturated failure mode — and
    // the identity intentionally no longer holds there.)
    ChargePumpModel cp;
    std::vector<double> x(16, 0.0);
    x[1] = 0.1;
    x[7] = -0.1;
    const double v = cp.output_voltage(x);
    ASSERT_GT(v, 0.05);
    ASSERT_LT(v, 1.75);
    const double mismatch = cp.mismatch_amps(x);
    const double load = std::abs(v - 0.9) / 200e3;
    EXPECT_NEAR(mismatch, load, 1e-8);
}

TEST(ChargePump, ThresholdShiftUnbalancesBranches) {
    ChargePumpModel cp;
    std::vector<double> vt_up_high(16, 0.0);
    vt_up_high[1] = 2.0;  // output mirror PMOS threshold up -> weaker UP
    std::vector<double> nominal(16, 0.0);
    EXPECT_GT(cp.mismatch_amps(vt_up_high), cp.mismatch_amps(nominal));
}

TEST(ChargePump, MismatchSymmetricUnderBranchSwap) {
    // Perturbing UP mirror up should mirror perturbing DN mirror up in
    // magnitude (approximately — device parameters differ slightly).
    ChargePumpModel cp;
    std::vector<double> up(16, 0.0), dn(16, 0.0);
    up[1] = 1.0;
    dn[7] = 1.0;
    const double mu = cp.mismatch_amps(up);
    const double md = cp.mismatch_amps(dn);
    EXPECT_GT(mu, 1e-6);
    EXPECT_GT(md, 1e-6);
    EXPECT_NEAR(mu / md, 1.0, 0.75);
}

TEST(ChargePump, RejectsWrongDimension) {
    ChargePumpModel cp;
    EXPECT_THROW(cp.mismatch_amps(std::vector<double>(5)),
                 std::invalid_argument);
}

}  // namespace
