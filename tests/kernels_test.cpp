// Tests for the dispatched kernel layer (DESIGN.md §13) and the matmul
// NaN-propagation bugfix.
//
// The central property: every fused/SIMD kernel is BITWISE identical to the
// serial scalar reference — across shapes (including degenerate ones),
// non-finite inputs, activation choices, backends, and thread counts. All
// comparisons below are on bit patterns, not operator== (NaN != NaN).

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <random>
#include <stdexcept>
#include <vector>

#include "flow/coupling.hpp"
#include "linalg/kernels/kernels.hpp"
#include "linalg/kernels/scalar_math.hpp"
#include "linalg/kernels/table.hpp"
#include "linalg/matrix.hpp"
#include "nn/mlp.hpp"
#include "parallel/thread_pool.hpp"
#include "rng/engine.hpp"

namespace nofis {
namespace {

using linalg::Matrix;
namespace kernels = linalg::kernels;
namespace detail = linalg::kernels::detail;

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

/// Restores the process-wide kernel choice (and thread count) on scope exit
/// so one test cannot leak its configuration into the next.
class ConfigGuard {
public:
    ConfigGuard() : choice_(kernels::active()) {}
    ~ConfigGuard() {
        kernels::set_choice(choice_);
        parallel::set_num_threads(0);
    }

private:
    kernels::Choice choice_;
};

/// True when a and b have identical bit patterns element-for-element
/// (distinguishes +0/-0 and compares NaNs by payload, which equality
/// comparison cannot).
bool bitwise_equal(const Matrix& a, const Matrix& b) {
    if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
    if (a.size() == 0) return true;
    return std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

bool bitwise_equal(const std::vector<double>& a,
                   const std::vector<double>& b) {
    if (a.size() != b.size()) return false;
    if (a.empty()) return true;
    return std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

/// Deterministic fill covering magnitudes and signs; optionally seeds a few
/// non-finite values (NaN, +Inf, -Inf) at fixed positions.
Matrix filled(std::size_t rows, std::size_t cols, std::uint64_t seed,
              bool poison = false) {
    Matrix m(rows, cols);
    std::mt19937_64 gen(seed);
    std::uniform_real_distribution<double> dist(-3.0, 3.0);
    for (double& v : m.flat()) v = dist(gen);
    if (poison && m.size() > 0) {
        m.flat()[0] = kNaN;
        if (m.size() > 2) m.flat()[m.size() / 2] = kInf;
        if (m.size() > 3) m.flat()[m.size() - 1] = -kInf;
    }
    return m;
}

// Shapes exercised by every property test: empty, single row/col, widths
// that are not multiples of the 4- and 8-lane SIMD blocks, and a larger
// rectangle.
struct Shape {
    std::size_t m, k, n;
};
const Shape kShapes[] = {{0, 3, 4}, {1, 1, 1},  {2, 5, 1}, {3, 1, 7},
                         {4, 4, 8}, {5, 7, 13}, {6, 3, 9}, {17, 11, 19}};

// ---------------------------------------------------------------------------
// Headline bugfix: matmul must propagate non-finite rhs values even through
// zero lhs entries (0 · NaN == NaN). The old inner loop skipped a == 0.0.
// ---------------------------------------------------------------------------

TEST(MatmulNanPropagation, ZeroLhsTimesNanRhsIsNan) {
    ConfigGuard guard;
    for (kernels::Choice c : {kernels::Choice::kScalar, kernels::Choice::kSimd}) {
        kernels::set_choice(c);
        // lhs row has a 0 exactly where rhs has its NaN/Inf row.
        const Matrix lhs{{0.0, 2.0}};
        const Matrix rhs{{kNaN, kInf}, {1.0, 1.0}};
        const Matrix out = lhs.matmul(rhs);
        EXPECT_TRUE(std::isnan(out(0, 0))) << kernels::choice_name();
        EXPECT_TRUE(std::isnan(out(0, 1))) << kernels::choice_name();
        EXPECT_FALSE(out.all_finite()) << kernels::choice_name();
    }
}

TEST(MatmulNanPropagation, ZeroRhsTimesInfLhsIsNan) {
    ConfigGuard guard;
    for (kernels::Choice c : {kernels::Choice::kScalar, kernels::Choice::kSimd}) {
        kernels::set_choice(c);
        const Matrix lhs{{kInf}};
        const Matrix rhs{{0.0}};
        const Matrix out = lhs.matmul(rhs);
        EXPECT_TRUE(std::isnan(out(0, 0))) << kernels::choice_name();
    }
}

// The guard the fix feeds: with a poisoned parameter, a batch that contains
// zeros must still produce a non-finite network output so the training
// loop's all_finite() divergence check fires instead of training on
// silently-zeroed garbage.
TEST(MatmulNanPropagation, DivergenceCheckFiresOnPoisonedBatch) {
    ConfigGuard guard;
    for (kernels::Choice c : {kernels::Choice::kScalar, kernels::Choice::kSimd}) {
        kernels::set_choice(c);
        rng::Engine eng(11);
        nn::MLP net({3, 8, 2}, nn::Activation::kTanh, eng);
        net.params()[0].mutable_value()(1, 0) = kNaN;  // poison one weight
        Matrix x(4, 3);  // all-zero batch: worst case for the old skip
        const Matrix y = net.predict(x);
        EXPECT_FALSE(y.all_finite()) << kernels::choice_name();
    }
}

TEST(MatmulNanPropagation, PoisonedCouplingOutputIsNonFinite) {
    ConfigGuard guard;
    for (kernels::Choice c : {kernels::Choice::kScalar, kernels::Choice::kSimd}) {
        kernels::set_choice(c);
        rng::Engine eng(13);
        flow::AffineCoupling layer(4, true, {8}, eng, 2.0);
        layer.params()[0].mutable_value()(0, 0) = kNaN;
        Matrix x(3, 4);  // zero batch
        std::vector<double> log_det(3, 0.0);
        const Matrix y = layer.forward_values(x, log_det);
        EXPECT_FALSE(y.all_finite()) << kernels::choice_name();
    }
}

// ---------------------------------------------------------------------------
// Empty-matrix semantics (satellite): mean() keeps its documented 0.0
// sentinel, min()/max() throw, to_string() of a zero-row matrix is "[]".
// ---------------------------------------------------------------------------

TEST(EmptyMatrix, MinMaxThrowMeanIsSentinel) {
    const Matrix empty;
    EXPECT_THROW(empty.min(), std::logic_error);
    EXPECT_THROW(empty.max(), std::logic_error);
    EXPECT_EQ(empty.mean(), 0.0);
    EXPECT_EQ(empty.sum(), 0.0);

    const Matrix zero_rows(0, 5);
    EXPECT_THROW(zero_rows.min(), std::logic_error);
    EXPECT_THROW(zero_rows.max(), std::logic_error);
    EXPECT_EQ(zero_rows.mean(), 0.0);
}

TEST(EmptyMatrix, ToStringOfZeroRowMatrixIsBrackets) {
    EXPECT_EQ(Matrix().to_string(), "[]");
    EXPECT_EQ(Matrix(0, 7).to_string(), "[]");
    // Non-empty stays the historical format.
    EXPECT_EQ(Matrix{{1.0}}.to_string(), "[1]");
}

TEST(EmptyMatrix, NonEmptyMinMaxUnchanged) {
    const Matrix m{{3.0, -1.0}, {2.0, 5.0}};
    EXPECT_EQ(m.min(), -1.0);
    EXPECT_EQ(m.max(), 5.0);
}

// ---------------------------------------------------------------------------
// Property tests: every backend table pinned bitwise against the scalar
// reference, shape sweep including degenerate and poisoned inputs.
// ---------------------------------------------------------------------------

/// Every non-null backend table paired with a label for failure messages.
std::vector<std::pair<const detail::Table*, const char*>> backend_tables() {
    std::vector<std::pair<const detail::Table*, const char*>> tables;
    tables.emplace_back(&detail::portable_table(), "portable");
    if (const detail::Table* t = detail::avx2_table())
        tables.emplace_back(t, "avx2");
    if (const detail::Table* t = detail::neon_table())
        tables.emplace_back(t, "neon");
    tables.emplace_back(&detail::simd_table(), "simd(resolved)");
    return tables;
}

TEST(KernelProperty, MatmulRowsBitwiseMatchesScalar) {
    const detail::Table& ref = detail::scalar_table();
    for (const auto& [table, name] : backend_tables()) {
        if (!table->matmul_rows) continue;
        for (const Shape& s : kShapes) {
            for (bool poison : {false, true}) {
                const Matrix lhs = filled(s.m, s.k, 7 * s.m + s.n, poison);
                const Matrix rhs = filled(s.k, s.n, 3 * s.k + 1, poison);
                Matrix want(s.m, s.n);
                Matrix got(s.m, s.n);
                ref.matmul_rows(lhs.data(), rhs.data(), want.data(), 0, s.m,
                                s.k, s.n);
                table->matmul_rows(lhs.data(), rhs.data(), got.data(), 0, s.m,
                                   s.k, s.n);
                EXPECT_TRUE(bitwise_equal(want, got))
                    << name << " " << s.m << "x" << s.k << "x" << s.n
                    << (poison ? " poisoned" : "");
            }
        }
    }
}

TEST(KernelProperty, LinearActRowsBitwiseMatchesScalar) {
    const detail::Table& ref = detail::scalar_table();
    using kernels::Act;
    for (const auto& [table, name] : backend_tables()) {
        if (!table->linear_act_rows) continue;
        for (const Shape& s : kShapes) {
            for (Act act : {Act::kNone, Act::kTanh, Act::kRelu,
                            Act::kLeakyRelu, Act::kSigmoid}) {
                const Matrix x = filled(s.m, s.k, 31 * s.m + s.k, true);
                const Matrix w = filled(s.k, s.n, 17 * s.n + 5);
                const Matrix b = filled(1, s.n, 23);
                Matrix want(s.m, s.n);
                Matrix got(s.m, s.n);
                ref.linear_act_rows(x.data(), w.data(), b.data(), want.data(),
                                    0, s.m, s.k, s.n, act);
                table->linear_act_rows(x.data(), w.data(), b.data(),
                                       got.data(), 0, s.m, s.k, s.n, act);
                EXPECT_TRUE(bitwise_equal(want, got))
                    << name << " act=" << static_cast<int>(act) << " " << s.m
                    << "x" << s.k << "x" << s.n;
            }
        }
    }
}

TEST(KernelProperty, AffineKernelsBitwiseMatchScalar) {
    const detail::Table& ref = detail::scalar_table();
    for (const auto& [table, name] : backend_tables()) {
        for (std::size_t dim : {2ul, 3ul, 5ul, 9ul}) {
            const std::size_t nb = dim / 2;
            std::vector<std::size_t> idx_b;
            for (std::size_t j = 0; j < nb; ++j) idx_b.push_back(dim - 1 - j);
            for (std::size_t rows : {0ul, 1ul, 4ul, 11ul}) {
                const Matrix x = filled(rows, dim, rows + dim, true);
                const Matrix h = filled(rows, 2 * nb, 5 * rows + 1, true);
                Matrix want = x, got = x;
                std::vector<double> ld_want(rows, 0.25), ld_got(rows, 0.25);
                if (table->affine_fwd_rows) {
                    ref.affine_fwd_rows(x.data(), h.data(), idx_b.data(), nb,
                                        1.5, dim, want.data(), ld_want.data(),
                                        0, rows);
                    table->affine_fwd_rows(x.data(), h.data(), idx_b.data(),
                                           nb, 1.5, dim, got.data(),
                                           ld_got.data(), 0, rows);
                    EXPECT_TRUE(bitwise_equal(want, got)) << name << dim;
                    EXPECT_TRUE(bitwise_equal(ld_want, ld_got)) << name << dim;
                }
                if (table->affine_inv_rows) {
                    want = x;
                    got = x;
                    std::fill(ld_want.begin(), ld_want.end(), 0.0);
                    std::fill(ld_got.begin(), ld_got.end(), 0.0);
                    ref.affine_inv_rows(x.data(), h.data(), idx_b.data(), nb,
                                        1.5, dim, want.data(), ld_want.data(),
                                        0, rows);
                    table->affine_inv_rows(x.data(), h.data(), idx_b.data(),
                                           nb, 1.5, dim, got.data(),
                                           ld_got.data(), 0, rows);
                    EXPECT_TRUE(bitwise_equal(want, got)) << name << dim;
                    EXPECT_TRUE(bitwise_equal(ld_want, ld_got)) << name << dim;
                }
                if (table->scale_shift_rows) {
                    const Matrix scale = filled(1, dim, 2 * dim);
                    const Matrix shift = filled(1, dim, 2 * dim + 1);
                    Matrix w2(rows, dim), g2(rows, dim);
                    ref.scale_shift_rows(x.data(), scale.data(), shift.data(),
                                         w2.data(), dim, 0, rows);
                    table->scale_shift_rows(x.data(), scale.data(),
                                            shift.data(), g2.data(), dim, 0,
                                            rows);
                    EXPECT_TRUE(bitwise_equal(w2, g2)) << name << dim;
                }
            }
        }
    }
}

TEST(KernelProperty, ElementwiseBitwiseMatchesScalar) {
    const detail::Table& ref = detail::scalar_table();
    for (const auto& [table, name] : backend_tables()) {
        for (std::size_t n : {0ul, 1ul, 3ul, 8ul, 17ul, 1024ul}) {
            const Matrix a = filled(1, n, n + 2, true);
            const Matrix b = filled(1, n, n + 3, true);
            Matrix want(1, n), got(1, n);
            auto check = [&](const char* op) {
                EXPECT_TRUE(bitwise_equal(want, got))
                    << name << " " << op << " n=" << n;
            };
            if (table->ew_add) {
                ref.ew_add(a.data(), b.data(), want.data(), n);
                table->ew_add(a.data(), b.data(), got.data(), n);
                check("add");
            }
            if (table->ew_sub) {
                ref.ew_sub(a.data(), b.data(), want.data(), n);
                table->ew_sub(a.data(), b.data(), got.data(), n);
                check("sub");
            }
            if (table->ew_mul) {
                ref.ew_mul(a.data(), b.data(), want.data(), n);
                table->ew_mul(a.data(), b.data(), got.data(), n);
                check("mul");
            }
            if (table->ew_scale) {
                ref.ew_scale(a.data(), -1.75, want.data(), n);
                table->ew_scale(a.data(), -1.75, got.data(), n);
                check("scale");
            }
            if (table->ew_tanh) {
                ref.ew_tanh(a.data(), want.data(), n);
                table->ew_tanh(a.data(), got.data(), n);
                check("tanh");
            }
            if (table->ew_exp) {
                ref.ew_exp(a.data(), want.data(), n);
                table->ew_exp(a.data(), got.data(), n);
                check("exp");
            }
            if (table->ew_tanh_bwd) {
                ref.ew_tanh_bwd(a.data(), b.data(), want.data(), n);
                table->ew_tanh_bwd(a.data(), b.data(), got.data(), n);
                check("tanh_bwd");
            }
            // In-place aliasing (out == a), used by Matrix::operator+=.
            if (table->ew_add && n > 0) {
                Matrix wa = a, ga = a;
                ref.ew_add(wa.data(), b.data(), wa.data(), n);
                table->ew_add(ga.data(), b.data(), ga.data(), n);
                EXPECT_TRUE(bitwise_equal(wa, ga)) << name << " aliased add";
            }
        }
    }
}

// ---------------------------------------------------------------------------
// End-to-end determinism: scalar vs simd, and thread counts {1, 2, 8},
// through the public APIs the kernels replaced.
// ---------------------------------------------------------------------------

TEST(KernelDeterminism, MlpPredictBitwiseAcrossFlavoursAndThreads) {
    ConfigGuard guard;
    rng::Engine eng(21);
    nn::MLP net({6, 32, 32, 4}, nn::Activation::kTanh, eng);
    // Large enough batch to cross the fused kernel's parallel threshold.
    const Matrix x = filled(192, 6, 99, true);

    kernels::set_choice(kernels::Choice::kScalar);
    const Matrix ref = net.predict(x);
    for (std::size_t threads : {1ul, 2ul, 8ul}) {
        parallel::set_num_threads(threads);
        kernels::set_choice(kernels::Choice::kScalar);
        EXPECT_TRUE(bitwise_equal(ref, net.predict(x))) << threads;
        kernels::set_choice(kernels::Choice::kSimd);
        EXPECT_TRUE(bitwise_equal(ref, net.predict(x))) << threads;
    }
}

TEST(KernelDeterminism, CouplingValuesBitwiseAcrossFlavoursAndThreads) {
    ConfigGuard guard;
    rng::Engine eng(31);
    flow::AffineCoupling layer(8, false, {16, 16}, eng, 2.0);
    // Perturb parameters so the layer is not the identity.
    for (auto& p : layer.params())
        for (double& v : p.mutable_value().flat()) v += 0.05;
    const Matrix x = filled(160, 8, 7);

    kernels::set_choice(kernels::Choice::kScalar);
    std::vector<double> ld_ref(x.rows(), 0.0);
    const Matrix y_ref = layer.forward_values(x, ld_ref);
    std::vector<double> ld_inv_ref(x.rows(), 0.0);
    const Matrix x_ref = layer.inverse_values(y_ref, ld_inv_ref);

    for (std::size_t threads : {1ul, 2ul, 8ul}) {
        parallel::set_num_threads(threads);
        for (kernels::Choice c :
             {kernels::Choice::kScalar, kernels::Choice::kSimd}) {
            kernels::set_choice(c);
            std::vector<double> ld(x.rows(), 0.0);
            EXPECT_TRUE(bitwise_equal(y_ref, layer.forward_values(x, ld)))
                << kernels::choice_name() << " t=" << threads;
            EXPECT_TRUE(bitwise_equal(ld_ref, ld))
                << kernels::choice_name() << " t=" << threads;
            std::vector<double> ld_inv(x.rows(), 0.0);
            EXPECT_TRUE(
                bitwise_equal(x_ref, layer.inverse_values(y_ref, ld_inv)))
                << kernels::choice_name() << " t=" << threads;
            EXPECT_TRUE(bitwise_equal(ld_inv_ref, ld_inv))
                << kernels::choice_name() << " t=" << threads;
        }
    }
    // Round trip really inverts (tolerance: the map is smooth, not exact).
    for (std::size_t i = 0; i < x.size(); ++i)
        EXPECT_NEAR(x.flat()[i], x_ref.flat()[i], 1e-9);
}

TEST(KernelDeterminism, MatrixMatmulBitwiseAcrossFlavoursAndThreads) {
    ConfigGuard guard;
    const Matrix a = filled(96, 40, 1, true);
    const Matrix b = filled(40, 56, 2, true);
    kernels::set_choice(kernels::Choice::kScalar);
    parallel::set_num_threads(1);
    const Matrix ref = a.matmul(b);
    for (std::size_t threads : {1ul, 2ul, 8ul}) {
        parallel::set_num_threads(threads);
        for (kernels::Choice c :
             {kernels::Choice::kScalar, kernels::Choice::kSimd}) {
            kernels::set_choice(c);
            EXPECT_TRUE(bitwise_equal(ref, a.matmul(b)))
                << kernels::choice_name() << " t=" << threads;
        }
    }
}

// ---------------------------------------------------------------------------
// Dispatch plumbing.
// ---------------------------------------------------------------------------

TEST(KernelDispatch, ParseChoiceAcceptsKnownNamesOnly) {
    EXPECT_EQ(kernels::parse_choice("auto"), kernels::Choice::kAuto);
    EXPECT_EQ(kernels::parse_choice("scalar"), kernels::Choice::kScalar);
    EXPECT_EQ(kernels::parse_choice("simd"), kernels::Choice::kSimd);
    EXPECT_FALSE(kernels::parse_choice("avx2").has_value());
    EXPECT_FALSE(kernels::parse_choice("").has_value());
    EXPECT_FALSE(kernels::parse_choice("SIMD").has_value());
}

TEST(KernelDispatch, SetChoiceRoundTripsAndAutoResolvesToSimd) {
    ConfigGuard guard;
    kernels::set_choice(kernels::Choice::kScalar);
    EXPECT_EQ(kernels::active(), kernels::Choice::kScalar);
    EXPECT_STREQ(kernels::choice_name(), "scalar");
    EXPECT_FALSE(kernels::simd_active());
    kernels::set_choice(kernels::Choice::kAuto);
    EXPECT_EQ(kernels::active(), kernels::Choice::kSimd);
    EXPECT_STREQ(kernels::choice_name(), "simd");
    EXPECT_TRUE(kernels::simd_active());
}

TEST(KernelDispatch, BackendNameIsKnown) {
    const std::string backend = kernels::simd_backend();
    EXPECT_TRUE(backend == "avx2" || backend == "neon" ||
                backend == "portable")
        << backend;
#if defined(__x86_64__)
    if (__builtin_cpu_supports("avx2")) {
        EXPECT_EQ(backend, "avx2");
    }
#endif
}

// ---------------------------------------------------------------------------
// The kernel layer's own exp/tanh (the deterministic Cephes ports that
// replaced libm in PR 7's re-baseline): accurate to a few ulps against
// libm over the whole working range, exact on the special values.
// ---------------------------------------------------------------------------

/// Units-in-the-last-place distance between two finite doubles.
std::uint64_t ulp_distance(double a, double b) {
    const auto key = [](double d) {
        std::int64_t i;
        std::memcpy(&i, &d, 8);
        // Map the sign-magnitude double ordering onto the integer line.
        return i < 0 ? std::int64_t(0x8000000000000000ULL) - i : i;
    };
    const std::int64_t ka = key(a);
    const std::int64_t kb = key(b);
    return static_cast<std::uint64_t>(ka > kb ? ka - kb : kb - ka);
}

TEST(KernelMath, ExpMatchesLibmWithinUlps) {
    std::uint64_t worst = 0;
    for (int i = -14000; i <= 14000; ++i) {
        const double x = 0.05 * i;  // [-700, 700]
        worst = std::max(worst, ulp_distance(kernels::k_exp(x), std::exp(x)));
    }
    EXPECT_LE(worst, 4u);
}

TEST(KernelMath, TanhMatchesLibmWithinUlps) {
    std::uint64_t worst = 0;
    for (int i = -20000; i <= 20000; ++i) {
        const double x = 0.001 * i;  // [-20, 20] covers both branches
        worst =
            std::max(worst, ulp_distance(kernels::k_tanh(x), std::tanh(x)));
    }
    EXPECT_LE(worst, 4u);
}

TEST(KernelMath, SpecialValuesAreExact) {
    EXPECT_EQ(kernels::k_exp(0.0), 1.0);
    EXPECT_EQ(kernels::k_exp(-0.0), 1.0);
    EXPECT_EQ(kernels::k_exp(kInf), kInf);
    EXPECT_EQ(kernels::k_exp(-kInf), 0.0);
    EXPECT_EQ(kernels::k_exp(710.0), kInf);   // past the overflow clamp
    EXPECT_EQ(kernels::k_exp(-746.0), 0.0);   // past the underflow clamp
    EXPECT_GT(kernels::k_exp(-709.0), 0.0);   // still normal
    EXPECT_GT(kernels::k_exp(-740.0), 0.0);   // denormal but non-zero
    EXPECT_TRUE(std::isnan(kernels::k_exp(kNaN)));

    EXPECT_EQ(kernels::k_tanh(0.0), 0.0);
    EXPECT_TRUE(std::signbit(kernels::k_tanh(-0.0)));  // tanh(-0) == -0
    EXPECT_EQ(kernels::k_tanh(kInf), 1.0);
    EXPECT_EQ(kernels::k_tanh(-kInf), -1.0);
    EXPECT_EQ(kernels::k_tanh(40.0), 1.0);   // saturated
    EXPECT_EQ(kernels::k_tanh(-40.0), -1.0);
    EXPECT_TRUE(std::isnan(kernels::k_tanh(kNaN)));

    EXPECT_EQ(kernels::k_sigmoid(0.0), 0.5);
    EXPECT_EQ(kernels::k_sigmoid(kInf), 1.0);
    EXPECT_EQ(kernels::k_sigmoid(-kInf), 0.0);
    EXPECT_TRUE(std::isnan(kernels::k_sigmoid(kNaN)));
}

TEST(KernelMath, OddSymmetryIsExact) {
    // k_tanh must be an exact odd function (the sign is applied as a bit
    // op), so flows see symmetric conditioners regardless of input sign.
    for (int i = 0; i <= 5000; ++i) {
        const double x = 0.004 * i;
        ASSERT_EQ(kernels::k_tanh(-x), -kernels::k_tanh(x)) << x;
    }
}

}  // namespace
}  // namespace nofis
