#include <gtest/gtest.h>

#include <cmath>

#include "autodiff/gradcheck.hpp"
#include "flow/coupling.hpp"
#include "flow/coupling_stack.hpp"
#include "linalg/lu.hpp"
#include "nn/optimizer.hpp"
#include "rng/normal.hpp"

namespace {

using namespace nofis;
using autodiff::Var;
using flow::AffineCoupling;
using flow::CouplingStack;
using flow::StackConfig;
using linalg::Matrix;
using rng::Engine;

/// A coupling layer with randomised (non-identity) conditioner weights, so
/// invertibility/log-det tests exercise a non-trivial map.
AffineCoupling randomized_coupling(std::size_t dim, bool first_half,
                                   std::uint64_t seed) {
    Engine eng(seed);
    AffineCoupling layer(dim, first_half, {16, 16}, eng, 2.0);
    Engine weights(seed + 1);
    for (auto& p : layer.params())
        for (double& v : p.mutable_value().flat())
            v = 0.3 * rng::standard_normal(weights);
    return layer;
}

TEST(Coupling, FreshLayerIsIdentity) {
    Engine eng(1);
    AffineCoupling layer(4, true, {8}, eng);
    const Matrix x = rng::standard_normal_matrix(eng, 10, 4);
    std::vector<double> ld(10, 0.0);
    const Matrix y = layer.forward_values(x, ld);
    EXPECT_LT(linalg::max_abs_diff(x, y), 1e-14);
    for (double v : ld) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Coupling, MaskPartitionCoversAllCoordinates) {
    Engine eng(2);
    for (std::size_t dim : {2u, 3u, 5u, 8u}) {
        AffineCoupling layer(dim, false, {8}, eng);
        std::vector<bool> seen(dim, false);
        for (auto i : layer.pass_indices()) seen[i] = true;
        for (auto i : layer.transform_indices()) {
            EXPECT_FALSE(seen[i]);
            seen[i] = true;
        }
        for (bool s : seen) EXPECT_TRUE(s);
    }
}

TEST(Coupling, RejectsDimensionOne) {
    Engine eng(3);
    EXPECT_THROW(AffineCoupling(1, true, {8}, eng), std::invalid_argument);
}

class CouplingInvertibility
    : public ::testing::TestWithParam<std::tuple<std::size_t, bool>> {};

TEST_P(CouplingInvertibility, InverseUndoesForward) {
    const auto [dim, first_half] = GetParam();
    const auto layer = randomized_coupling(dim, first_half, 100 + dim);
    Engine eng(5);
    const Matrix x = rng::standard_normal_matrix(eng, 32, dim);
    std::vector<double> ld_f(32, 0.0);
    const Matrix y = layer.forward_values(x, ld_f);
    std::vector<double> ld_i(32, 0.0);
    const Matrix back = layer.inverse_values(y, ld_i);
    EXPECT_LT(linalg::max_abs_diff(x, back), 1e-10);
    // The inverse path reports the same forward log-det.
    for (std::size_t r = 0; r < 32; ++r) EXPECT_NEAR(ld_f[r], ld_i[r], 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    DimsAndMasks, CouplingInvertibility,
    ::testing::Combine(::testing::Values(2, 3, 4, 7, 10),
                       ::testing::Bool()));

TEST(Coupling, LogDetMatchesNumericalJacobian) {
    const std::size_t dim = 3;
    const auto layer = randomized_coupling(dim, true, 42);
    Engine eng(6);
    const Matrix x = rng::standard_normal_matrix(eng, 1, dim);

    std::vector<double> ld(1, 0.0);
    layer.forward_values(x, ld);

    // Finite-difference Jacobian.
    const double h = 1e-6;
    Matrix jac(dim, dim);
    for (std::size_t c = 0; c < dim; ++c) {
        Matrix xp = x;
        Matrix xm = x;
        xp(0, c) += h;
        xm(0, c) -= h;
        std::vector<double> scratch(1, 0.0);
        const Matrix yp = layer.forward_values(xp, scratch);
        scratch[0] = 0.0;
        const Matrix ym = layer.forward_values(xm, scratch);
        for (std::size_t r = 0; r < dim; ++r)
            jac(r, c) = (yp(0, r) - ym(0, r)) / (2.0 * h);
    }
    const double log_det_fd =
        linalg::LuDecomposition(jac).log_abs_determinant();
    EXPECT_NEAR(ld[0], log_det_fd, 1e-5);
}

TEST(Coupling, ForwardVarMatchesForwardValues) {
    const auto layer = randomized_coupling(5, false, 7);
    Engine eng(8);
    const Matrix x = rng::standard_normal_matrix(eng, 6, 5);
    const auto graph = layer.forward(Var(x));
    std::vector<double> ld(6, 0.0);
    const Matrix y = layer.forward_values(x, ld);
    EXPECT_LT(linalg::max_abs_diff(graph.y.value(), y), 1e-13);
    for (std::size_t r = 0; r < 6; ++r)
        EXPECT_NEAR(graph.log_det.value()(r, 0), ld[r], 1e-13);
}

TEST(Coupling, GradCheckThroughForward) {
    const auto layer = randomized_coupling(4, true, 9);
    Engine eng(10);
    const Matrix x0 = rng::standard_normal_matrix(eng, 3, 4);
    const auto res = autodiff::grad_check(
        [&layer](const Var& x) {
            auto fwd = layer.forward(x);
            return autodiff::add(autodiff::sum(fwd.y),
                                 autodiff::sum(fwd.log_det));
        },
        x0, 1e-5, 1e-5);
    EXPECT_TRUE(res.passed) << res.max_rel_error;
}

// ---------------------------------------------------------------------------
// CouplingStack
// ---------------------------------------------------------------------------

StackConfig small_stack_config(std::size_t dim, std::size_t blocks,
                               std::size_t k) {
    StackConfig cfg;
    cfg.dim = dim;
    cfg.num_blocks = blocks;
    cfg.layers_per_block = k;
    cfg.hidden = {16};
    return cfg;
}

CouplingStack randomized_stack(const StackConfig& cfg, std::uint64_t seed) {
    Engine eng(seed);
    CouplingStack stack(cfg, eng);
    Engine weights(seed + 13);
    for (auto& p : stack.params())
        for (double& v : p.mutable_value().flat())
            v = 0.2 * rng::standard_normal(weights);
    return stack;
}

TEST(CouplingStack, FreshStackSamplesBaseDistribution) {
    Engine eng(11);
    CouplingStack stack(small_stack_config(3, 2, 4), eng);
    Engine eng2(12);
    const auto s = stack.sample(eng2, 2000, 2);
    // Identity flow: q == N(0, I); check log_q matches the base log-pdf.
    for (std::size_t r = 0; r < 5; ++r)
        EXPECT_NEAR(s.log_q[r],
                    rng::standard_normal_log_pdf(s.z.row_span(r)), 1e-12);
    EXPECT_NEAR(s.z.col_means()(0, 0), 0.0, 0.1);
}

TEST(CouplingStack, InverseUndoesTransport) {
    const auto stack = randomized_stack(small_stack_config(4, 3, 4), 50);
    Engine eng(13);
    const Matrix z0 = rng::standard_normal_matrix(eng, 20, 4);
    const auto s = stack.transport(z0, 3);
    const Matrix back = stack.inverse(s.z, 3);
    EXPECT_LT(linalg::max_abs_diff(z0, back), 1e-9);
}

TEST(CouplingStack, LogProbConsistentWithSamplingPath) {
    const auto stack = randomized_stack(small_stack_config(3, 2, 6), 51);
    Engine eng(14);
    const auto s = stack.sample(eng, 16, 2);
    const auto lp = stack.log_prob(s.z, 2);
    for (std::size_t r = 0; r < 16; ++r)
        EXPECT_NEAR(lp[r], s.log_q[r], 1e-9) << "row " << r;
}

TEST(CouplingStack, DensityIntegratesToOne2D) {
    // Mildly randomised weights (a strongly-kicked flow spreads mass beyond
    // any finite grid); the integral over a wide box must be ~1.
    Engine eng(52);
    CouplingStack stack(small_stack_config(2, 2, 4), eng);
    Engine weights(65);
    for (auto& p : stack.params())
        for (double& v : p.mutable_value().flat())
            v = 0.08 * rng::standard_normal(weights);
    double total = 0.0;
    const double h = 0.12;
    const double lim = 14.0;
    Matrix pt(1, 2);
    for (double a = -lim; a < lim; a += h)
        for (double b = -lim; b < lim; b += h) {
            pt(0, 0) = a;
            pt(0, 1) = b;
            total += std::exp(stack.log_prob(pt, 2)[0]) * h * h;
        }
    EXPECT_NEAR(total, 1.0, 0.02);
}

TEST(CouplingStack, AnchorNesting) {
    // Transport through m blocks then the remaining blocks equals transport
    // through all blocks at once.
    const auto stack = randomized_stack(small_stack_config(3, 3, 3), 53);
    Engine eng(15);
    const Matrix z0 = rng::standard_normal_matrix(eng, 8, 3);
    std::vector<double> ld_all(8, 0.0);
    const Matrix z_all = stack.transport_range(z0, 0, 3, ld_all);
    std::vector<double> ld_split(8, 0.0);
    const Matrix z_mid = stack.transport_range(z0, 0, 1, ld_split);
    const Matrix z_split = stack.transport_range(z_mid, 1, 3, ld_split);
    EXPECT_LT(linalg::max_abs_diff(z_all, z_split), 1e-10);
    for (std::size_t r = 0; r < 8; ++r)
        EXPECT_NEAR(ld_all[r], ld_split[r], 1e-10);
}

TEST(CouplingStack, FreezeSemantics) {
    Engine eng(16);
    CouplingStack stack(small_stack_config(2, 3, 2), eng);
    stack.freeze_blocks_before(2);
    for (std::size_t b = 0; b < 3; ++b) {
        const bool expect_trainable = b >= 2;
        for (const auto& p : stack.block_params(b))
            EXPECT_EQ(p.requires_grad(), expect_trainable) << "block " << b;
    }
    stack.unfreeze_all();
    for (const auto& p : stack.params()) EXPECT_TRUE(p.requires_grad());
}

TEST(CouplingStack, FrozenBlocksUnchangedByTraining) {
    auto stack = randomized_stack(small_stack_config(2, 2, 2), 54);
    stack.freeze_blocks_before(1);
    const Matrix w_before = stack.block_params(0).front().value();

    // One surrogate training step on block 1.
    nn::Adam opt(stack.block_params(1), 1e-2);
    Engine eng(17);
    const Matrix z0 = rng::standard_normal_matrix(eng, 32, 2);
    auto fwd = stack.forward(Var(z0), 2);
    opt.zero_grad();
    autodiff::sum(fwd.log_det).backward();
    opt.step();

    EXPECT_EQ(stack.block_params(0).front().value(), w_before);
}

TEST(CouplingStack, ValidatesArguments) {
    Engine eng(18);
    CouplingStack stack(small_stack_config(2, 2, 2), eng);
    EXPECT_THROW(stack.forward(Var(Matrix(1, 2)), 0), std::invalid_argument);
    EXPECT_THROW(stack.forward(Var(Matrix(1, 2)), 3), std::invalid_argument);
    EXPECT_THROW(stack.block_params(2), std::out_of_range);
    StackConfig bad = small_stack_config(2, 0, 2);
    EXPECT_THROW(CouplingStack(bad, eng), std::invalid_argument);
}

TEST(CouplingStack, TrainingShiftsDensityTowardTarget) {
    // Sanity: a few reverse-KL steps should move q's mean toward a shifted
    // Gaussian target N(2, I) in 1 block.
    Engine eng(19);
    StackConfig cfg = small_stack_config(2, 1, 4);
    CouplingStack stack(cfg, eng);
    nn::Adam opt(stack.params(), 2e-2);
    for (int step = 0; step < 150; ++step) {
        const Matrix z0 = rng::standard_normal_matrix(eng, 64, 2);
        auto fwd = stack.forward(Var(z0), 1);
        // loss = -E[log-det] - E[log N(z; 2, I)] (pathwise gradient via the
        // dot_constant surrogate: d/dz log N(z;2,I) = -(z - 2)).
        Matrix c(64, 2);
        for (std::size_t r = 0; r < 64; ++r)
            for (std::size_t col = 0; col < 2; ++col)
                c(r, col) = -(fwd.z.value()(r, col) - 2.0) / 64.0;
        auto loss = autodiff::add(
            autodiff::neg(autodiff::mean(fwd.log_det)),
            autodiff::neg(autodiff::dot_constant(fwd.z, c)));
        opt.zero_grad();
        loss.backward();
        opt.step();
    }
    Engine eng2(20);
    const auto s = stack.sample(eng2, 2000, 1);
    EXPECT_NEAR(s.z.col_means()(0, 0), 2.0, 0.35);
    EXPECT_NEAR(s.z.col_means()(0, 1), 2.0, 0.35);
}

}  // namespace
