// Calibration utility (development-time): measures nominal responses,
// g-quantiles under p, and failure probabilities for the test-case models so
// thresholds / golden values hard-coded in src/testcases can be set
// honestly. Recipes and results are recorded in EXPERIMENTS.md.
//
// Usage: calibrate <case> <num_samples> [mode]
//   mode "mc"  (default): plain MC estimate of P[g<=0] + quantiles of g
//   mode "sus": deep subset simulation estimate (for very rare cases)

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "estimators/sus.hpp"
#include "rng/normal.hpp"
#include "testcases/registry.hpp"
#include "util/parse.hpp"

using namespace nofis;

int main(int argc, char** argv) {
    if (argc < 3) {
        std::fprintf(stderr, "usage: calibrate <case> <samples> [mc|sus|quant]\n");
        return 1;
    }
    const std::string name = argv[1];
    const auto parsed_n = util::parse_u64(argv[2]);
    if (!parsed_n) {
        std::fprintf(stderr, "error: invalid sample count '%s'\n", argv[2]);
        return 2;
    }
    const std::size_t n = static_cast<std::size_t>(*parsed_n);
    const std::string mode = argc > 3 ? argv[3] : "mc";

    auto tc = testcases::make_case(name);
    rng::Engine eng(123456789);

    std::vector<double> zero(tc->dim(), 0.0);
    std::printf("%s: dim=%zu g(0)=%.6g golden(hardcoded)=%.4g\n", name.c_str(),
                tc->dim(), tc->g(zero), tc->golden_pr());

    if (mode == "sus") {
        double sum = 0.0;
        const int reps = 5;
        for (int r = 0; r < reps; ++r) {
            rng::Engine e2(999 + r);
            estimators::SubsetSimulationEstimator sus(
                {.samples_per_level = n, .p0 = 0.1, .max_levels = 14,
                 .proposal_spread = 1.0});
            const auto res = sus.estimate(*tc, e2);
            std::printf("  sus rep %d: p=%.5e calls=%zu%s\n", r, res.p_hat,
                        res.calls, res.failed ? " FAILED" : "");
            sum += res.p_hat;
        }
        std::printf("  sus mean: %.5e\n", sum / reps);
        return 0;
    }

    // Plain MC with quantile report.
    std::vector<double> gv;
    gv.reserve(n);
    std::size_t hits = 0;
    const std::size_t chunk = 8192;
    std::vector<double> x(tc->dim());
    for (std::size_t done = 0; done < n;) {
        const std::size_t b = std::min(chunk, n - done);
        for (std::size_t i = 0; i < b; ++i) {
            rng::fill_standard_normal(eng, x);
            const double g = tc->g(x);
            gv.push_back(g);
            if (g <= 0.0) ++hits;
        }
        done += b;
    }
    std::printf("  P[g<=0] = %.5e  (%zu/%zu hits)\n",
                static_cast<double>(hits) / static_cast<double>(n), hits, n);
    std::sort(gv.begin(), gv.end());
    for (double q : {1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.25, 0.5, 0.9}) {
        const auto idx = static_cast<std::size_t>(
            q * static_cast<double>(gv.size() - 1));
        std::printf("  quantile %-7g -> g = %.6g\n", q, gv[idx]);
    }
    return 0;
}
