// Development-time hyperparameter sweep utility for NOFIS on any test case.
// usage: tune <case> <lr> <tau> <clip> <nis> <reps> <E> <N> <cap> <hid> <decay> [levels...]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include "core/nofis.hpp"
#include "rng/normal.hpp"
#include "testcases/registry.hpp"
#include "util/parse.hpp"
using namespace nofis;
namespace {
// Strict positional parsing: a typo'd number aborts instead of silently
// becoming 0 (atof/atoll accept any garbage).
double num_arg(int argc, char** argv, int i, double fallback) {
    if (argc <= i) return fallback;
    const auto v = util::parse_double(argv[i]);
    if (!v) { fprintf(stderr, "invalid number '%s' (arg %d)\n", argv[i], i); exit(2); }
    return *v;
}
size_t size_arg(int argc, char** argv, int i, size_t fallback) {
    if (argc <= i) return fallback;
    const auto v = util::parse_u64(argv[i]);
    if (!v) { fprintf(stderr, "invalid count '%s' (arg %d)\n", argv[i], i); exit(2); }
    return (size_t)*v;
}
}  // namespace
int main(int argc, char** argv) {
    if (argc < 2) { fprintf(stderr, "need case name\n"); return 1; }
    auto tc = testcases::make_case(argv[1]);
    auto b = tc->nofis_budget();
    core::NofisConfig cfg;
    cfg.learning_rate = num_arg(argc, argv, 2, b.learning_rate);
    cfg.tau = num_arg(argc, argv, 3, b.tau);
    cfg.grad_clip = num_arg(argc, argv, 4, 100.0);
    cfg.n_is = size_arg(argc, argv, 5, b.n_is);
    int reps = (int)size_arg(argc, argv, 6, 5);
    cfg.epochs = size_arg(argc, argv, 7, b.epochs);
    cfg.samples_per_epoch = size_arg(argc, argv, 8, b.samples_per_epoch);
    cfg.scale_cap = num_arg(argc, argv, 9, 2.0);
    size_t hid = size_arg(argc, argv, 10, 32);
    cfg.hidden = {hid, hid};
    cfg.lr_decay = num_arg(argc, argv, 11, b.lr_decay);
    if (const char* dw = getenv("DEFW")) cfg.defensive_weight = atof(dw);
    if (getenv("ADDITIVE")) cfg.coupling = flow::CouplingKind::kAdditive;
    if (const char* ds = getenv("DEFS")) cfg.defensive_sigma = atof(ds);
    std::vector<double> lv = b.levels;
    if (argc > 12) { lv.clear(); for (int i = 12; i < argc; ++i) lv.push_back(num_arg(argc, argv, i, 0)); }
    core::NofisEstimator est(cfg, core::LevelSchedule::manual(lv));
    double sum_err = 0, sum_ess = 0; size_t calls = 0;
    for (int r = 0; r < reps; ++r) {
        rng::Engine eng(1000 + r);
        auto run = est.run(*tc, eng);
        double err = estimators::log_error(run.estimate.p_hat, tc->golden_pr());
        printf("  rep %d: p=%.3e err=%.3f hits=%zu ess=%.1f insideM=%.2f\n", r,
               run.estimate.p_hat, err, run.is_diag.hits,
               run.is_diag.effective_sample_size,
               run.stages.back().inside_fraction);
        sum_err += err; sum_ess += run.is_diag.effective_sample_size;
        calls = run.estimate.calls;
    }
    printf("%s lr=%g tau=%g E=%zu N=%zu nis=%zu calls=%zu: avg err=%.3f avg ess=%.1f\n",
           argv[1], cfg.learning_rate, cfg.tau, cfg.epochs, cfg.samples_per_epoch,
           cfg.n_is, calls, sum_err/reps, sum_ess/reps);
    return 0;
}
